//! Service reports and their invariants.
//!
//! Everything here serializes through ordered containers only
//! (`Vec`s, no hash maps), so `serde_json` output for the same run is
//! byte-identical — the property the soak command's reproducibility
//! check rests on.

use serde::{Deserialize, Serialize};

use crate::request::{Algorithm, Priority};

/// One device attempt at serving a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// Pool index of the device that ran the attempt.
    pub device: usize,
    /// Virtual dispatch time, ms.
    pub start_ms: f64,
    /// Virtual time the attempt finished or failed, ms.
    pub end_ms: f64,
    /// The error for a failed attempt; `None` for the success.
    pub error: Option<String>,
    /// True when the failure was a transient injected fault (these are
    /// the attempts the fault-accounting invariant reconciles).
    pub transient: bool,
}

/// How a request left the system. Every admitted or rejected request
/// gets exactly one outcome — nothing is ever silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum Outcome {
    /// A device attempt succeeded.
    Completed {
        /// Pool index of the device that finished the request.
        device: usize,
    },
    /// Sorted by `cpu_ref` on the host (exhausted retries, no fitting
    /// device, or shed-with-feasible-deadline).
    CpuFallback {
        /// Why the request degraded to the host.
        reason: String,
    },
    /// Dropped under overload; the data was never sorted.
    Shed {
        /// Why the request was shed.
        reason: String,
    },
    /// Refused at admission.
    Rejected {
        /// Why admission control refused the request.
        reason: String,
    },
}

/// The full story of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id.
    pub id: u64,
    /// Shedding priority.
    pub priority: Priority,
    /// Device sorter requested.
    pub algorithm: Algorithm,
    /// Arrays in the batch.
    pub num_arrays: usize,
    /// Elements per array.
    pub array_len: usize,
    /// Virtual arrival, ms.
    pub arrival_ms: f64,
    /// Absolute virtual deadline, ms.
    pub deadline_ms: f64,
    /// Device attempts, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Final disposition.
    pub outcome: Outcome,
    /// Virtual completion time for outcomes that produced output.
    pub completion_ms: Option<f64>,
    /// Whether the completion beat the deadline (`None` when nothing
    /// completed).
    pub deadline_met: Option<bool>,
    /// Whether the output matched the `cpu_ref` oracle (`None` when
    /// nothing was sorted).
    pub verified: Option<bool>,
}

impl RequestRecord {
    /// Attempts that failed with a transient injected fault.
    pub fn transient_failures(&self) -> usize {
        self.attempts.iter().filter(|a| a.transient).count()
    }
}

/// Per-device roll-up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Pool index.
    pub index: usize,
    /// Device name from its spec.
    pub name: String,
    /// Requests completed on this device.
    pub completed: u32,
    /// Attempts that failed here with a transient fault.
    pub failed_attempts: u32,
    /// Attempts that failed here with a fatal error.
    pub fatal_failures: u32,
    /// All faults the device's injector fired (including stalls).
    pub injected_faults: usize,
    /// Error-producing faults only (the reconciliation target).
    pub error_faults: usize,
    /// Times the device's breaker tripped.
    pub breaker_trips: u32,
    /// True when a fatal error blacklisted the device.
    pub blacklisted: bool,
    /// Simulated milliseconds of device activity.
    pub device_ms: f64,
}

/// The whole run: per-request records, per-device roll-ups, counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Scheduler seed (tie-breaking RNG).
    pub seed: u64,
    /// Requests in the workload.
    pub requests: usize,
    /// Requests completed on a device.
    pub completed: usize,
    /// Requests sorted by the host fallback.
    pub cpu_fallbacks: usize,
    /// Requests shed under overload.
    pub shed: usize,
    /// Requests refused at admission.
    pub rejected: usize,
    /// Completions (device or host) that beat their deadline.
    pub deadline_hits: usize,
    /// Completions that missed their deadline.
    pub deadline_misses: usize,
    /// Virtual time the last work finished, ms.
    pub makespan_ms: f64,
    /// Per-device roll-ups, by pool index.
    pub devices: Vec<DeviceReport>,
    /// Per-request records, sorted by id.
    pub records: Vec<RequestRecord>,
}

impl ServiceReport {
    /// Pretty JSON; byte-identical for identical runs.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Transient attempt failures across all requests, per device.
    pub fn transient_failures_by_device(&self) -> Vec<usize> {
        let mut per = vec![0usize; self.devices.len()];
        for r in &self.records {
            for a in &r.attempts {
                if a.transient {
                    per[a.device] += 1;
                }
            }
        }
        per
    }

    /// Checks the run's hard invariants. Returns one message per
    /// violation; an empty vector means the run reconciles:
    ///
    /// 1. exactly one record per workload request (no silent drops);
    /// 2. every outcome that produced output verified against `cpu_ref`;
    /// 3. per device, transient attempt failures == the injector's
    ///    error-fault log (each failed attempt fails fast on its first
    ///    fault) and the device roll-up agrees with the records;
    /// 4. shed/rejected requests carry a non-empty reason and no output.
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.records.len() != self.requests {
            v.push(format!(
                "{} records for {} requests — something was dropped silently",
                self.records.len(),
                self.requests
            ));
        }
        let resolved = self.completed + self.cpu_fallbacks + self.shed + self.rejected;
        if resolved != self.requests {
            v.push(format!(
                "outcome counters sum to {resolved}, expected {}",
                self.requests
            ));
        }
        for r in &self.records {
            match &r.outcome {
                Outcome::Completed { .. } | Outcome::CpuFallback { .. } => {
                    if r.verified != Some(true) {
                        v.push(format!(
                            "request {}: output not verified against oracle",
                            r.id
                        ));
                    }
                    if r.completion_ms.is_none() {
                        v.push(format!(
                            "request {}: completed without a completion time",
                            r.id
                        ));
                    }
                }
                Outcome::Shed { reason } | Outcome::Rejected { reason } => {
                    if reason.is_empty() {
                        v.push(format!("request {}: dropped without a reason", r.id));
                    }
                    if r.completion_ms.is_some() || r.verified.is_some() {
                        v.push(format!("request {}: dropped yet carries output", r.id));
                    }
                }
            }
        }
        let per_device = self.transient_failures_by_device();
        for d in &self.devices {
            if per_device[d.index] != d.error_faults {
                v.push(format!(
                    "device {}: {} transient attempt failures but injector logged {} error faults",
                    d.index, per_device[d.index], d.error_faults
                ));
            }
            if d.failed_attempts as usize != per_device[d.index] {
                v.push(format!(
                    "device {}: roll-up says {} failed attempts, records say {}",
                    d.index, d.failed_attempts, per_device[d.index]
                ));
            }
        }
        v
    }
}
