//! Sort requests and deterministic workloads.
//!
//! A [`SortRequest`] is everything the service needs to serve one batch:
//! the shape, the seed that regenerates its data (requests carry seeds,
//! not payloads, so workload files stay small and runs stay
//! reproducible), the algorithm, a [`Priority`] for the shedding order
//! and an absolute virtual-time deadline. A [`Workload`] is an
//! arrival-ordered stream of requests, either loaded from JSON or
//! generated from a seed.

use array_sort::SplitterPolicy;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Request priority. Under overload the service sheds the *lowest*
/// priority first; the derived `Ord` ascends from [`Priority::Low`] to
/// [`Priority::Critical`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(rename_all = "lowercase")]
pub enum Priority {
    /// First to be shed.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Shed only after all normal/low requests.
    High,
    /// Never shed before anything else is.
    Critical,
}

impl Priority {
    /// Parses the lowercase name used by the CLI and workload files.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            "critical" => Ok(Priority::Critical),
            other => Err(format!(
                "unknown priority '{other}' (expected low|normal|high|critical)"
            )),
        }
    }

    /// Lowercase display name.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
            Priority::Critical => "critical",
        }
    }
}

/// Which device sorter serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "lowercase")]
pub enum Algorithm {
    /// GPU-ArraySort, the paper's in-place three-phase pipeline. The
    /// service still projects both GAS variants for these requests and
    /// dispatches whichever the cost model says is cheaper.
    #[default]
    Gas,
    /// The fused single-kernel GAS pipeline, forced (no variant choice).
    #[serde(rename = "gas-fused")]
    GasFused,
    /// The warp-multisplit fused pipeline with the padded conflict-free
    /// scatter, forced.
    #[serde(rename = "gas-warp")]
    GasWarp,
    /// The sort-then-sort Thrust baseline (STA).
    Sta,
}

impl Algorithm {
    /// Parses the lowercase name used by the CLI and workload files.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "gas" => Ok(Algorithm::Gas),
            "gas-fused" => Ok(Algorithm::GasFused),
            "gas-warp" => Ok(Algorithm::GasWarp),
            "sta" => Ok(Algorithm::Sta),
            other => Err(format!(
                "unknown algorithm '{other}' (expected gas|gas-fused|gas-warp|sta)"
            )),
        }
    }

    /// Lowercase display name.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Gas => "gas",
            Algorithm::GasFused => "gas-fused",
            Algorithm::GasWarp => "gas-warp",
            Algorithm::Sta => "sta",
        }
    }
}

/// One batch-sort request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortRequest {
    /// Unique request id; the report carries exactly one record per id.
    pub id: u64,
    /// Arrays in the batch.
    pub num_arrays: usize,
    /// Elements per array.
    pub array_len: usize,
    /// Seed regenerating the batch's data (paper-uniform distribution).
    pub data_seed: u64,
    /// Device sorter to use.
    pub algorithm: Algorithm,
    /// Splitter-selection policy for GAS requests (ignored by
    /// [`Algorithm::Sta`]). Defaults to the paper's regular sampling, so
    /// workload files written before the field existed parse unchanged.
    #[serde(default)]
    pub splitters: SplitterPolicy,
    /// Shedding priority.
    pub priority: Priority,
    /// Virtual-time arrival, ms.
    pub arrival_ms: f64,
    /// Absolute virtual-time deadline, ms.
    pub deadline_ms: f64,
}

impl SortRequest {
    /// Raw payload size in bytes (f32 elements).
    pub fn data_bytes(&self) -> u64 {
        (self.num_arrays as u64) * (self.array_len as u64) * 4
    }
}

/// Knobs for [`Workload::generate`]. All ranges are inclusive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Seed for every random draw the generator makes.
    pub seed: u64,
    /// Number of requests.
    pub requests: usize,
    /// `num_arrays` range.
    pub arrays: (usize, usize),
    /// `array_len` range.
    pub array_len: (usize, usize),
    /// Mean virtual-time gap between arrivals, ms (gaps are uniform in
    /// `[0.5, 1.5) ×` this).
    pub mean_gap_ms: f64,
    /// Deadline slack range: the deadline is the arrival plus a uniform
    /// multiple of a crude per-request service estimate.
    pub deadline_slack: (f64, f64),
    /// Fraction of requests routed to [`Algorithm::Sta`].
    pub sta_fraction: f64,
    /// Fraction of requests forced to [`Algorithm::GasWarp`] (drawn from
    /// the non-STA share). Defaults to 0 so workloads generated before
    /// the variant existed replay bit-identically.
    #[serde(default)]
    pub warp_fraction: f64,
    /// Fraction of requests forced to [`Algorithm::GasFused`] (drawn
    /// from the share left after STA and warp). Defaults to 0 for the
    /// same replay-compatibility reason; the CI soak sets it so the
    /// cost-model accuracy metrics cover all three GAS variants.
    #[serde(default)]
    pub fused_fraction: f64,
    /// Fraction of requests served with the deterministic splitter
    /// policy ([`SplitterPolicy::Deterministic`]). Decided from a hash
    /// of the request id rather than an RNG draw, so setting it does not
    /// perturb the shapes/arrivals of workloads generated before the
    /// knob existed (they replay bit-identically). Defaults to 0.
    #[serde(default)]
    pub deterministic_fraction: f64,
    /// Fraction of requests rewritten into **repeated content**: each
    /// flagged request takes one of four canned (shape, data-seed)
    /// palette entries, so identical payload bytes recur throughout the
    /// stream and the result cache has something to hit. Decided from a
    /// hash of the request id (a different hash than
    /// `deterministic_fraction`) after every RNG draw, so setting it
    /// does not perturb the non-repeated requests — they stay
    /// bit-identical to the knob-free workload. Defaults to 0.
    #[serde(default)]
    pub repeat_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            requests: 100,
            arrays: (8, 64),
            array_len: (16, 96),
            mean_gap_ms: 0.4,
            deadline_slack: (4.0, 40.0),
            sta_fraction: 0.25,
            warp_fraction: 0.0,
            fused_fraction: 0.0,
            deterministic_fraction: 0.0,
            repeat_fraction: 0.0,
        }
    }
}

/// The canned (num_arrays, array_len, data-seed salt) palette
/// `repeat_fraction` rewrites flagged requests onto. Four entries keep
/// the cache honest (it must hold several keys, not one) while each
/// entry recurs often enough to hit.
const REPEAT_PALETTE: [(usize, usize, u64); 4] = [(6, 32, 1), (8, 24, 2), (4, 48, 3), (8, 40, 4)];

/// An arrival-ordered stream of sort requests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The requests, sorted by `(arrival_ms, id)`.
    pub requests: Vec<SortRequest>,
}

impl Workload {
    /// Generates a deterministic workload: the same config always yields
    /// the same requests, bit for bit.
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut arrival = 0.0f64;
        let mut requests = Vec::with_capacity(cfg.requests);
        for id in 0..cfg.requests as u64 {
            arrival += cfg.mean_gap_ms * rng.gen_range(0.5..1.5);
            let num_arrays = rng.gen_range(cfg.arrays.0..=cfg.arrays.1);
            let array_len = rng.gen_range(cfg.array_len.0..=cfg.array_len.1);
            let draw = rng.gen::<f64>();
            let algorithm = if draw < cfg.sta_fraction {
                Algorithm::Sta
            } else if draw < cfg.sta_fraction + cfg.warp_fraction {
                Algorithm::GasWarp
            } else if draw < cfg.sta_fraction + cfg.warp_fraction + cfg.fused_fraction {
                Algorithm::GasFused
            } else {
                Algorithm::Gas
            };
            let priority = match rng.gen_range(0..10) {
                0 => Priority::Critical,
                1 | 2 => Priority::High,
                3..=7 => Priority::Normal,
                _ => Priority::Low,
            };
            // Crude service estimate: n log n element moves at host speed
            // plus a transfer allowance. Only the *slack multiple* of this
            // matters; the service's own admission estimator is sharper.
            let n = array_len as f64;
            let crude_ms = num_arrays as f64 * n * n.log2().max(1.0) * 10e-6;
            let slack = rng.gen_range(cfg.deadline_slack.0..=cfg.deadline_slack.1);
            // Splitter policy from a hash of the id, not an RNG draw:
            // the knob must not shift any draw the shapes above consume.
            let det_unit =
                (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64 / (1u64 << 24) as f64;
            let splitters = if det_unit < cfg.deterministic_fraction {
                SplitterPolicy::Deterministic
            } else {
                SplitterPolicy::RegularSample
            };
            let mut req = SortRequest {
                id,
                num_arrays,
                array_len,
                data_seed: cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(id),
                algorithm,
                splitters,
                priority,
                arrival_ms: arrival,
                deadline_ms: arrival + (crude_ms * slack).max(1.0),
            };
            // Repeated-content rewrite, also from an id hash (a different
            // one) applied after every RNG draw: flagged requests snap to
            // a canned palette entry whose data seed depends only on the
            // workload seed, so identical bytes recur across the stream.
            // Arrival, priority and deadline keep their drawn values.
            let repeat_unit = (id.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64
                / (1u64 << 24) as f64;
            if repeat_unit < cfg.repeat_fraction {
                let pick =
                    (id.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 8) as usize % REPEAT_PALETTE.len();
                let (num, len, salt) = REPEAT_PALETTE[pick];
                req.num_arrays = num;
                req.array_len = len;
                req.data_seed = cfg.seed.wrapping_mul(0x51_7C_C1B7).wrapping_add(salt);
                req.algorithm = Algorithm::Gas;
                req.splitters = SplitterPolicy::RegularSample;
            }
            requests.push(req);
        }
        Workload { requests }
    }

    /// Parses a workload from JSON: either `{"requests": [...]}` or a
    /// bare request array.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let as_workload: Result<Workload, _> = serde_json::from_str(body);
        if let Ok(w) = as_workload {
            return Ok(w);
        }
        let as_list: Result<Vec<SortRequest>, _> = serde_json::from_str(body);
        match as_list {
            Ok(requests) => Ok(Workload { requests }),
            Err(e) => Err(format!("cannot parse workload: {e}")),
        }
    }

    /// Serializes the workload as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workload serializes")
    }

    /// Checks the stream is well formed: unique ids, positive shapes,
    /// non-decreasing arrivals, deadlines after arrivals.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut last_arrival = f64::NEG_INFINITY;
        for r in &self.requests {
            if !seen.insert(r.id) {
                return Err(format!("duplicate request id {}", r.id));
            }
            if r.num_arrays == 0 || r.array_len == 0 {
                return Err(format!(
                    "request {}: num_arrays and array_len must be positive",
                    r.id
                ));
            }
            if r.arrival_ms < last_arrival {
                return Err(format!("request {}: arrivals must be non-decreasing", r.id));
            }
            if r.deadline_ms <= r.arrival_ms {
                return Err(format!(
                    "request {}: deadline {} must be after arrival {}",
                    r.id, r.deadline_ms, r.arrival_ms
                ));
            }
            last_arrival = r.arrival_ms;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let cfg = WorkloadConfig {
            requests: 50,
            ..WorkloadConfig::default()
        };
        let a = Workload::generate(&cfg);
        let b = Workload::generate(&cfg);
        assert_eq!(a, b, "same seed, same workload");
        assert_eq!(a.requests.len(), 50);
        a.validate().unwrap();
        let other = Workload::generate(&WorkloadConfig {
            seed: 1,
            requests: 50,
            ..WorkloadConfig::default()
        });
        assert_ne!(a, other, "different seed, different workload");
    }

    #[test]
    fn warp_fraction_routes_requests_without_disturbing_the_rest() {
        let base = WorkloadConfig {
            requests: 200,
            ..WorkloadConfig::default()
        };
        let plain = Workload::generate(&base);
        assert!(
            plain
                .requests
                .iter()
                .all(|r| r.algorithm != Algorithm::GasWarp),
            "default mix stays warp-free (back-compat)"
        );
        let mixed = Workload::generate(&WorkloadConfig {
            warp_fraction: 0.3,
            ..base.clone()
        });
        let warps = mixed
            .requests
            .iter()
            .filter(|r| r.algorithm == Algorithm::GasWarp)
            .count();
        assert!(warps > 20, "0.3 of 200 requests routes dozens, got {warps}");
        // Shapes, arrivals and deadlines are untouched by the routing knob.
        for (a, b) in plain.requests.iter().zip(&mixed.requests) {
            assert_eq!(
                (a.num_arrays, a.array_len, a.arrival_ms.to_bits()),
                (b.num_arrays, b.array_len, b.arrival_ms.to_bits())
            );
        }
    }

    #[test]
    fn fused_fraction_routes_requests_without_disturbing_the_rest() {
        let base = WorkloadConfig {
            requests: 200,
            ..WorkloadConfig::default()
        };
        let plain = Workload::generate(&base);
        assert!(
            plain
                .requests
                .iter()
                .all(|r| r.algorithm != Algorithm::GasFused),
            "default mix stays fused-free (back-compat)"
        );
        let mixed = Workload::generate(&WorkloadConfig {
            warp_fraction: 0.2,
            fused_fraction: 0.2,
            ..base.clone()
        });
        let fused = mixed
            .requests
            .iter()
            .filter(|r| r.algorithm == Algorithm::GasFused)
            .count();
        let warps = mixed
            .requests
            .iter()
            .filter(|r| r.algorithm == Algorithm::GasWarp)
            .count();
        assert!(fused > 10, "0.2 of 200 requests routes dozens, got {fused}");
        assert!(warps > 10, "warp share survives alongside, got {warps}");
        // Shapes, arrivals and deadlines are untouched by the routing knob.
        for (a, b) in plain.requests.iter().zip(&mixed.requests) {
            assert_eq!(
                (a.num_arrays, a.array_len, a.arrival_ms.to_bits()),
                (b.num_arrays, b.array_len, b.arrival_ms.to_bits())
            );
        }
    }

    #[test]
    fn deterministic_fraction_routes_policies_without_disturbing_the_rest() {
        let base = WorkloadConfig {
            requests: 200,
            ..WorkloadConfig::default()
        };
        let plain = Workload::generate(&base);
        assert!(
            plain
                .requests
                .iter()
                .all(|r| r.splitters == SplitterPolicy::RegularSample),
            "default mix stays on the paper's policy (back-compat)"
        );
        let mixed = Workload::generate(&WorkloadConfig {
            deterministic_fraction: 0.4,
            ..base.clone()
        });
        let det = mixed
            .requests
            .iter()
            .filter(|r| r.splitters == SplitterPolicy::Deterministic)
            .count();
        assert!(
            det > 40 && det < 160,
            "0.4 of 200 requests routes a deterministic share, got {det}"
        );
        // Everything except the policy field is bit-identical: the knob
        // consumes no RNG draw.
        for (a, b) in plain.requests.iter().zip(&mixed.requests) {
            let mut b2 = b.clone();
            b2.splitters = a.splitters;
            assert_eq!(a, &b2);
        }
    }

    #[test]
    fn repeat_fraction_repeats_content_without_disturbing_the_rest() {
        let base = WorkloadConfig {
            requests: 200,
            ..WorkloadConfig::default()
        };
        let plain = Workload::generate(&base);
        let mixed = Workload::generate(&WorkloadConfig {
            repeat_fraction: 0.5,
            ..base.clone()
        });
        let repeated: Vec<&SortRequest> = plain
            .requests
            .iter()
            .zip(&mixed.requests)
            .filter(|(a, b)| a != b)
            .map(|(_, b)| b)
            .collect();
        assert!(
            repeated.len() > 50 && repeated.len() < 150,
            "0.5 of 200 requests rewritten, got {}",
            repeated.len()
        );
        // Every rewritten request sits on a palette entry, and each
        // distinct (shape, seed) recurs — that is what a cache can hit.
        let mut seeds: Vec<u64> = repeated.iter().map(|r| r.data_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert!(
            seeds.len() <= 4 && seeds.len() >= 2,
            "palette holds 4 canned seeds, saw {}",
            seeds.len()
        );
        assert!(repeated.len() > 2 * seeds.len(), "each entry recurs");
        // Non-repeated requests are bit-identical: the knob consumes no
        // RNG draw, and arrival/priority/deadline survive even on the
        // rewritten ones.
        for (a, b) in plain.requests.iter().zip(&mixed.requests) {
            assert_eq!(a.arrival_ms.to_bits(), b.arrival_ms.to_bits());
            assert_eq!(a.deadline_ms.to_bits(), b.deadline_ms.to_bits());
            assert_eq!(a.priority, b.priority);
        }
        mixed.validate().unwrap();
    }

    #[test]
    fn json_round_trip_and_bare_array() {
        let w = Workload::generate(&WorkloadConfig {
            requests: 3,
            ..WorkloadConfig::default()
        });
        let parsed = Workload::from_json(&w.to_json()).unwrap();
        assert_eq!(w, parsed);
        let bare = serde_json::to_string(&w.requests).unwrap();
        assert_eq!(Workload::from_json(&bare).unwrap(), w);
        assert!(Workload::from_json("nonsense").is_err());
    }

    #[test]
    fn validate_rejects_malformed_streams() {
        let mut w = Workload::generate(&WorkloadConfig {
            requests: 2,
            ..WorkloadConfig::default()
        });
        w.requests[1].id = w.requests[0].id;
        assert!(w.validate().unwrap_err().contains("duplicate"));

        let mut w = Workload::generate(&WorkloadConfig {
            requests: 2,
            ..WorkloadConfig::default()
        });
        w.requests[1].arrival_ms = w.requests[0].arrival_ms - 1.0;
        assert!(w.validate().unwrap_err().contains("non-decreasing"));

        let mut w = Workload::generate(&WorkloadConfig {
            requests: 1,
            ..WorkloadConfig::default()
        });
        w.requests[0].deadline_ms = w.requests[0].arrival_ms;
        assert!(w.validate().unwrap_err().contains("deadline"));
    }

    #[test]
    fn priority_and_algorithm_parse() {
        assert_eq!(Priority::parse("critical").unwrap(), Priority::Critical);
        assert!(Priority::parse("urgent").is_err());
        assert_eq!(Algorithm::parse("sta").unwrap(), Algorithm::Sta);
        assert_eq!(Algorithm::parse("gas-fused").unwrap(), Algorithm::GasFused);
        assert_eq!(Algorithm::parse("gas-warp").unwrap(), Algorithm::GasWarp);
        assert_eq!(
            serde_json::to_string(&Algorithm::GasWarp).unwrap(),
            "\"gas-warp\""
        );
        assert!(Algorithm::parse("quick").is_err());
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::High < Priority::Critical);
    }
}
