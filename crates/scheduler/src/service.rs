//! The deadline-aware scheduling loop.
//!
//! [`SortService::run`] drains a [`Workload`] through a [`DevicePool`]
//! on a single **virtual clock**: time only moves when the next event
//! (an arrival, a device finishing, a retry backoff expiring, a breaker
//! cooldown ending) says so, and every duration comes from the
//! simulator's own cycle bills. Combined with seeded tie-breaking this
//! makes a soak run over thousands of requests bit-reproducible.
//!
//! Per request the service:
//!
//! 1. **admits or refuses** on arrival — a batch that fits no healthy
//!    device, or whose projected completion (queue backlog spread over
//!    healthy devices plus the cost-model estimate) blows its deadline,
//!    is rejected with the reason in the report;
//! 2. **dispatches** the highest-priority runnable request (EDF within
//!    a priority class) to the healthy idle device with the lowest
//!    estimated service time, breaking exact ties with the seeded RNG;
//! 3. **retries with backoff** after a transient injected fault — the
//!    attempt is rolled back via [`array_sort::checkpointed_attempt`]
//!    and re-dispatched, *preferring a different device* than the one
//!    that just failed;
//! 4. **degrades gracefully** — exhausted retries (or an overload shed
//!    whose deadline is still feasible on host) fall back to
//!    [`array_sort::cpu_ref`]; overload sheds the lowest-priority
//!    queued request first, always with an explicit record.
//!
//! Device attempts run inside `sched/req-N/attempt-1` spans, retries
//! inside `recovery/req-N/attempt-K`, host fallbacks leave a
//! `recovery/req-N/cpu-fallback` marker — all through the existing
//! [`gpu_sim::trace`] pipeline, so a pool trace shows the whole story.
//!
//! On top of that sits the tail-tolerance layer (all off by default,
//! enabled via [`SchedulerConfig`]):
//!
//! * **Attempt watchdog** — every attempt carries a budget of
//!   `CostModel::device_ms_worst × timeout_slack`; a *successful*
//!   attempt whose bill exceeds it (a stall storm) is cancelled at the
//!   checkpoint, leaves a `recovery/req-N/watchdog-cancel` marker, and
//!   the request is re-dispatched with backoff to a different device.
//! * **Request hedging** — a High/Critical request whose deadline slack
//!   at dispatch is below `hedge_slack_ms` gets a speculative duplicate
//!   attempt on a second idle device (`sched/req-N/hedge-K` span).
//!   First completion wins — exact ties broken by the seeded RNG — and
//!   the loser is cancelled at its checkpoint with its wasted time
//!   accounted in `gas_hedges_total` / `gas_hedge_wasted_ms_total`.
//! * **Device death** — the permanent
//!   [`gpu_sim::FaultKind::DeviceDeath`] fault rides the fatal path:
//!   the breaker blacklists the device forever, the in-flight attempt
//!   rolls back to its checkpoint and re-dispatches, and the pool
//!   serves on down to one device, then the host.
//! * **Degradation ladder** — see [`crate::degrade`]: L0 normal → L1 no
//!   hedging → L2 cheapest GAS variant → L3 shed low priority → L4
//!   host-only, escalating immediately and recovering with hysteresis,
//!   every transition a `sched/degrade/*` span and a metric.

use std::cell::Cell;
use std::collections::VecDeque;

use array_sort::{
    checkpointed_attempt, cpu_ref, ArraySortConfig, FailedAttempt, FusedSort, FusedStrategy,
    GpuArraySort, SplitterPolicy,
};
use gpu_sim::FaultPlan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use telemetry::{Registry, Snapshot};

use crate::breaker::BreakerConfig;
use crate::degrade::DegradationLadder;
use crate::estimate::{CostModel, GasVariant};
use crate::pool::DevicePool;
use crate::report::{
    record_request_metrics, AttemptRecord, DegradationReport, DeviceReport, Outcome, RequestRecord,
    ServiceReport, SloReport,
};
use crate::request::{Algorithm, Priority, SortRequest, Workload};

/// Slop for virtual-time comparisons.
const EPS: f64 = 1e-9;

/// Scheduler tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Seed for the tie-breaking RNG.
    pub seed: u64,
    /// Queue depth beyond which the lowest-priority request is shed.
    pub max_queue_depth: usize,
    /// Device attempts per request (across all devices) before the
    /// host fallback. Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Base retry backoff, doubled per failed attempt.
    pub backoff_base_ms: f64,
    /// Per-device circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Admission cost model.
    pub cost: CostModel,
    /// Watchdog slack factor: an attempt's budget is
    /// `device_ms_worst × timeout_slack`; a successful attempt billed
    /// over budget is cancelled at the checkpoint and re-dispatched.
    /// `0.0` (the default) disables the watchdog.
    #[serde(default)]
    pub timeout_slack: f64,
    /// Hedging threshold: a High/Critical request whose deadline slack
    /// at dispatch falls below this many virtual milliseconds gets a
    /// speculative duplicate attempt on a second idle device. `0.0`
    /// (the default) disables hedging.
    #[serde(default)]
    pub hedge_slack_ms: f64,
    /// Enables the graceful-degradation ladder ([`crate::degrade`]).
    #[serde(default)]
    pub degrade: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            max_queue_depth: 16,
            max_attempts: 3,
            backoff_base_ms: 2.0,
            breaker: BreakerConfig::default(),
            cost: CostModel::default(),
            timeout_slack: 0.0,
            hedge_slack_ms: 0.0,
            degrade: false,
        }
    }
}

/// An admitted request waiting for (re)dispatch.
struct Pending {
    req: SortRequest,
    data: Vec<f32>,
    oracle: Vec<f32>,
    est_ms: f64,
    attempts_made: u32,
    attempts: Vec<AttemptRecord>,
    not_before_ms: f64,
    last_device: Option<usize>,
}

/// The service: a device pool plus the scheduling state.
pub struct SortService {
    cfg: SchedulerConfig,
    pool: DevicePool,
    sorter: GpuArraySort,
    fused: FusedSort,
    warp: FusedSort,
    det_sorter: GpuArraySort,
    det_fused: FusedSort,
    det_warp: FusedSort,
    rng: ChaCha8Rng,
    registry: Registry,
    ladder: DegradationLadder,
}

/// One device attempt's raw outcome, before watchdog and hedge-race
/// routing.
struct AttemptRun {
    result: Result<(), FailedAttempt>,
    end_ms: f64,
    predicted_ms: f64,
    variant_label: &'static str,
    overflows: u64,
}

/// An attempt after watchdog assessment: what goes into the record,
/// plus whether its result is still in the running.
struct Assessed {
    di: usize,
    hedge: bool,
    end_ms: f64,
    error: Option<String>,
    transient: bool,
    cancelled: Option<String>,
    predicted_ms: f64,
    variant: &'static str,
    viable: bool,
    overflows: u64,
}

impl SortService {
    /// Builds a service over `specs`. With `faults`, device `i` runs
    /// under the plan reseeded `seed + i` (see [`DevicePool::new`]).
    pub fn new(
        specs: Vec<gpu_sim::DeviceSpec>,
        cfg: SchedulerConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<Self, String> {
        let pool = DevicePool::new(specs, cfg.breaker, faults)?;
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let det_cfg = ArraySortConfig {
            splitter_policy: SplitterPolicy::Deterministic,
            ..Default::default()
        };
        let build = |e: array_sort::ConfigError| format!("deterministic sorter config: {e:?}");
        let degrade = cfg.degrade;
        Ok(Self {
            cfg,
            pool,
            sorter: GpuArraySort::new(),
            fused: FusedSort::new(),
            warp: FusedSort::warp(),
            det_sorter: GpuArraySort::with_config(det_cfg.clone()).map_err(build)?,
            det_fused: FusedSort::with_config(det_cfg.clone()).map_err(build)?,
            det_warp: FusedSort::with_config_and_strategy(det_cfg, FusedStrategy::WarpConflictFree)
                .map_err(build)?,
            rng,
            registry: Registry::new(),
            ladder: DegradationLadder::new(degrade),
        })
    }

    /// The device pool — for trace export after a run.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The metric registry populated by the last [`SortService::run`]
    /// (empty before the first run). The soak command merges these
    /// across seeds.
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// The last run's metrics frozen into a [`Snapshot`] — the payload
    /// of `gas serve|soak --metrics`.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Drains `workload` to completion and reports every request's fate.
    pub fn run(&mut self, workload: &Workload) -> Result<ServiceReport, String> {
        workload.validate()?;
        self.registry = Registry::new();
        self.ladder = DegradationLadder::new(self.cfg.degrade);
        if self.cfg.degrade {
            // The gauge is always present when the ladder is on, even
            // for a run that never leaves L0 — the CI non-vacuity gate.
            self.registry.set_gauge("gas_degradation_level", &[], 0.0);
        }
        let mut arrivals: VecDeque<SortRequest> = workload.requests.iter().cloned().collect();
        let mut queue: Vec<Pending> = Vec::new();
        let mut records: Vec<RequestRecord> = Vec::new();
        let mut now = 0.0f64;

        loop {
            while arrivals.front().is_some_and(|r| r.arrival_ms <= now + EPS) {
                let req = arrivals.pop_front().expect("front checked");
                self.update_ladder(now, queue.len());
                self.admit(req, now, &mut queue, &mut records);
            }
            self.update_ladder(now, queue.len());

            if let Some((qi, di)) = self.pick(&queue, now) {
                let p = queue.remove(qi);
                self.execute(p, di, now, &mut queue, &mut records);
                continue;
            }

            // Nothing dispatchable at `now`: advance to the next event.
            let mut next = f64::INFINITY;
            if let Some(r) = arrivals.front() {
                next = next.min(r.arrival_ms);
            }
            for p in &queue {
                if p.not_before_ms > now + EPS {
                    next = next.min(p.not_before_ms);
                }
            }
            for d in &self.pool.devices {
                if d.breaker.is_blacklisted() {
                    continue;
                }
                if d.busy_until_ms > now + EPS {
                    next = next.min(d.busy_until_ms);
                }
                if let Some(u) = d.breaker.open_until() {
                    if u > now + EPS {
                        next = next.min(u);
                    }
                }
            }
            if next.is_finite() {
                now = next;
                continue;
            }

            if queue.is_empty() && arrivals.is_empty() {
                break;
            }
            // No event will ever fire again: every queued request fits
            // only blacklisted devices. Degrade or shed each, explicitly.
            for p in std::mem::take(&mut queue) {
                let host_ms = self.cfg.cost.host_ms(p.req.num_arrays, p.req.array_len);
                if now + host_ms <= p.req.deadline_ms + EPS {
                    self.resolve_host(
                        p,
                        now,
                        "no healthy device available; degraded to host".into(),
                        &mut records,
                    );
                } else {
                    records.push(Self::dropped(
                        p.req,
                        p.attempts,
                        Outcome::Shed {
                            reason: "no healthy device available and host cannot meet deadline"
                                .into(),
                        },
                    ));
                }
            }
        }

        records.sort_by_key(|r| r.id);
        Ok(self.build_report(workload, records))
    }

    /// Admission control: generate the batch, refuse what cannot be
    /// served, shed the lowest priority under overload.
    fn admit(
        &mut self,
        req: SortRequest,
        now: f64,
        queue: &mut Vec<Pending>,
        records: &mut Vec<RequestRecord>,
    ) {
        // L3+: the ladder sheds low-priority work at the door, before
        // any batch generation is spent on it.
        if self.ladder.enabled() && self.ladder.level() >= 3 && req.priority == Priority::Low {
            let level = self.ladder.level();
            records.push(Self::dropped(
                req,
                Vec::new(),
                Outcome::Shed {
                    reason: format!("degradation L{level}: low-priority shed at admission"),
                },
            ));
            return;
        }
        let batch = datagen::ArrayBatch::generate(
            req.data_seed,
            req.num_arrays,
            req.array_len,
            datagen::Distribution::PaperUniform,
            datagen::Arrangement::Shuffled,
        );
        let data = batch.as_flat().to_vec();
        let mut oracle = data.clone();
        cpu_ref::sort_arrays_seq(&mut oracle, req.array_len);

        // L4: host-only serving — the pool is gone; don't even consult
        // it.
        if self.ladder.enabled() && self.ladder.level() >= 4 {
            let host_ms = self.cfg.cost.host_ms(req.num_arrays, req.array_len);
            if now + host_ms <= req.deadline_ms + EPS {
                let pending = Pending {
                    req,
                    data,
                    oracle,
                    est_ms: host_ms,
                    attempts_made: 0,
                    attempts: Vec::new(),
                    not_before_ms: now,
                    last_device: None,
                };
                self.resolve_host(
                    pending,
                    now,
                    "degradation L4: host-only serving".into(),
                    records,
                );
            } else {
                records.push(Self::dropped(
                    req,
                    Vec::new(),
                    Outcome::Shed {
                        reason: "degradation L4: host-only and host cannot meet deadline".into(),
                    },
                ));
            }
            return;
        }

        let fits_somewhere = self
            .pool
            .devices
            .iter()
            .any(|d| !d.breaker.is_blacklisted() && self.fits(d.spec(), &req));
        let host_ms = self.cfg.cost.host_ms(req.num_arrays, req.array_len);
        if !fits_somewhere {
            let pending = Pending {
                req,
                data,
                oracle,
                est_ms: host_ms,
                attempts_made: 0,
                attempts: Vec::new(),
                not_before_ms: now,
                last_device: None,
            };
            if now + host_ms <= pending.req.deadline_ms + EPS {
                self.resolve_host(
                    pending,
                    now,
                    "batch fits no healthy pool device; served on host".into(),
                    records,
                );
            } else {
                records.push(Self::dropped(
                    pending.req,
                    Vec::new(),
                    Outcome::Rejected {
                        reason: "batch fits no healthy pool device and host cannot meet deadline"
                            .into(),
                    },
                ));
            }
            return;
        }

        // Projected completion: current backlog spread over healthy
        // devices, then this request's own best-device estimate.
        let est = self
            .pool
            .devices
            .iter()
            .filter(|d| !d.breaker.is_blacklisted() && self.fits(d.spec(), &req))
            .map(|d| self.projected_ms(d.spec(), &req))
            .fold(f64::INFINITY, f64::min);
        let healthy = self.pool.healthy_count().max(1) as f64;
        let backlog: f64 = queue.iter().map(|p| p.est_ms).sum::<f64>()
            + self
                .pool
                .devices
                .iter()
                .filter(|d| !d.breaker.is_blacklisted())
                .map(|d| (d.busy_until_ms - now).max(0.0))
                .sum::<f64>();
        let projected = now + backlog / healthy + est;
        if projected > req.deadline_ms + EPS {
            records.push(Self::dropped(
                req,
                Vec::new(),
                Outcome::Rejected {
                    reason: format!(
                        "projected completion {projected:.3} ms exceeds deadline {:.3} ms \
                         (queue backlog {backlog:.3} ms over {healthy} healthy devices)",
                        req.deadline_ms
                    ),
                },
            ));
            return;
        }

        queue.push(Pending {
            req,
            data,
            oracle,
            est_ms: est,
            attempts_made: 0,
            attempts: Vec::new(),
            not_before_ms: now,
            last_device: None,
        });

        // Overload: shed lowest priority first (ties: latest deadline,
        // then newest). A victim whose deadline the host can still meet
        // degrades to cpu_ref instead of being dropped.
        while queue.len() > self.cfg.max_queue_depth.max(1) {
            let vi = (0..queue.len())
                .min_by(|&a, &b| {
                    let (pa, pb) = (&queue[a], &queue[b]);
                    pa.req
                        .priority
                        .cmp(&pb.req.priority)
                        .then(pb.req.deadline_ms.total_cmp(&pa.req.deadline_ms))
                        .then(pb.req.id.cmp(&pa.req.id))
                })
                .expect("queue is non-empty");
            let victim = queue.remove(vi);
            let depth = self.cfg.max_queue_depth;
            let victim_host_ms = self
                .cfg
                .cost
                .host_ms(victim.req.num_arrays, victim.req.array_len);
            if now + victim_host_ms <= victim.req.deadline_ms + EPS {
                self.resolve_host(
                    victim,
                    now,
                    format!("shed at queue depth {depth}; host can still meet deadline"),
                    records,
                );
            } else {
                records.push(Self::dropped(
                    victim.req,
                    victim.attempts,
                    Outcome::Shed {
                        reason: format!(
                            "queue overflow at depth {depth}: lowest-priority request shed"
                        ),
                    },
                ));
            }
        }
    }

    /// Picks the next (request, device) pair dispatchable at `now`:
    /// requests in priority-then-EDF order, each offered the healthy
    /// idle device with the lowest estimate (exact ties broken by the
    /// seeded RNG, preferring a device other than the last one tried).
    fn pick(&mut self, queue: &[Pending], now: f64) -> Option<(usize, usize)> {
        let mut order: Vec<usize> = (0..queue.len())
            .filter(|&i| queue[i].not_before_ms <= now + EPS)
            .collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&queue[a], &queue[b]);
            pb.req
                .priority
                .cmp(&pa.req.priority)
                .then(pa.req.deadline_ms.total_cmp(&pb.req.deadline_ms))
                .then(pa.req.id.cmp(&pb.req.id))
        });
        for qi in order {
            if let Some(di) = self.pick_device(&queue[qi], now) {
                return Some((qi, di));
            }
        }
        None
    }

    fn pick_device(&mut self, p: &Pending, now: f64) -> Option<usize> {
        let mut best: Vec<usize> = Vec::new();
        let mut best_est = f64::INFINITY;
        for d in &self.pool.devices {
            if d.busy_until_ms > now + EPS
                || !d.breaker.accepts(now)
                || !self.fits(d.spec(), &p.req)
            {
                continue;
            }
            let est = self.projected_ms(d.spec(), &p.req);
            if est < best_est {
                best_est = est;
                best = vec![d.index];
            } else if est == best_est {
                best.push(d.index);
            }
        }
        // Re-dispatch preference: not the device that just failed us.
        if best.len() > 1 {
            if let Some(last) = p.last_device {
                best.retain(|&i| i != last);
            }
        }
        match best.len() {
            0 => None,
            1 => Some(best[0]),
            n => Some(best[self.rng.gen_range(0..n)]),
        }
    }

    /// Does the batch fit the device under the request's algorithm?
    fn fits(&self, spec: &gpu_sim::DeviceSpec, req: &SortRequest) -> bool {
        match req.algorithm {
            // Fused/warp capacity is bounded by the three-kernel plan
            // (their fallback), so one check covers every GAS variant.
            Algorithm::Gas | Algorithm::GasFused | Algorithm::GasWarp => {
                self.sorter.max_arrays(spec, req.array_len) >= req.num_arrays as u64
            }
            Algorithm::Sta => {
                thrust_sim::sta::max_arrays(spec, req.array_len as u64) >= req.num_arrays as u64
            }
        }
    }

    /// Cost-model service projection for one request on one device. GAS
    /// requests are priced at the cheaper of the two pipeline variants —
    /// the same choice [`SortService::execute`] dispatches — under the
    /// request's splitter policy (deterministic selection costs more up
    /// front, and the model says so).
    fn projected_ms(&self, spec: &gpu_sim::DeviceSpec, req: &SortRequest) -> f64 {
        let cfg = if req.splitters == SplitterPolicy::Deterministic {
            self.det_sorter.config()
        } else {
            self.sorter.config()
        };
        match req.algorithm {
            Algorithm::Gas => {
                self.cfg
                    .cost
                    .best_gas_variant(spec, cfg, req.num_arrays, req.array_len)
                    .1
            }
            Algorithm::GasFused => {
                self.cfg
                    .cost
                    .device_ms_fused(spec, cfg, req.num_arrays, req.array_len)
            }
            Algorithm::GasWarp => {
                self.cfg
                    .cost
                    .device_ms_warp(spec, cfg, req.num_arrays, req.array_len)
            }
            Algorithm::Sta => self
                .cfg
                .cost
                .device_ms(spec, cfg, req.num_arrays, req.array_len),
        }
    }

    /// The attempt watchdog's budget for one (device, request) pairing:
    /// `device_ms_worst × timeout_slack`, or `None` when the watchdog is
    /// off. The worst-case bound already absorbs bounded re-splits and
    /// pipeline fallbacks, so only genuinely pathological attempts (a
    /// stall storm) blow it.
    fn watchdog_budget_ms(&self, di: usize, req: &SortRequest) -> Option<f64> {
        if self.cfg.timeout_slack <= 0.0 {
            return None;
        }
        let cfg = if req.splitters == SplitterPolicy::Deterministic {
            self.det_sorter.config()
        } else {
            self.sorter.config()
        };
        Some(
            self.cfg.cost.device_ms_worst(
                self.pool.devices[di].spec(),
                cfg,
                req.num_arrays,
                req.array_len,
            ) * self.cfg.timeout_slack,
        )
    }

    /// Picks a second idle device for a hedge attempt: the same policy as
    /// [`SortService::pick_device`] but never the primary. `None` means
    /// no hedge — the request proceeds unhedged rather than waiting.
    fn pick_hedge_device(&mut self, p: &Pending, primary: usize, now: f64) -> Option<usize> {
        let mut best: Vec<usize> = Vec::new();
        let mut best_est = f64::INFINITY;
        for d in &self.pool.devices {
            if d.index == primary
                || d.busy_until_ms > now + EPS
                || !d.breaker.accepts(now)
                || !self.fits(d.spec(), &p.req)
            {
                continue;
            }
            let est = self.projected_ms(d.spec(), &p.req);
            if est < best_est {
                best_est = est;
                best = vec![d.index];
            } else if est == best_est {
                best.push(d.index);
            }
        }
        match best.len() {
            0 => None,
            1 => Some(best[0]),
            n => Some(best[self.rng.gen_range(0..n)]),
        }
    }

    /// Feeds the ladder the current pool and queue pressure. A
    /// transition moves the `gas_degradation_level` gauge, ticks the
    /// `gas_degradation_transitions_total{from,to}` counter and leaves a
    /// `sched/degrade/L<from>-L<to>` marker span on device 0's timeline.
    fn update_ladder(&mut self, now: f64, queue_len: usize) {
        if !self.ladder.enabled() {
            return;
        }
        let healthy = self.pool.healthy_count();
        let total = self.pool.devices.len();
        let depth = self.cfg.max_queue_depth.max(1);
        if let Some(t) = self.ladder.observe(now, healthy, total, queue_len, depth) {
            self.registry
                .set_gauge("gas_degradation_level", &[], f64::from(t.to));
            let from = t.from.to_string();
            let to = t.to.to_string();
            self.registry.inc(
                "gas_degradation_transitions_total",
                &[("from", &from), ("to", &to)],
            );
            let g = &mut self.pool.devices[0].gpu;
            let span = g.begin_span(&format!("sched/degrade/L{}-L{}", t.from, t.to));
            g.end_span(span);
        }
    }

    /// Runs one checkpointed sort attempt on device `di` — breaker
    /// dispatch accounting, variant selection, billing — and returns the
    /// raw outcome. Success/failure routing, the watchdog and the hedge
    /// race all happen in [`SortService::execute`].
    fn device_attempt(
        &mut self,
        req: &SortRequest,
        data: &mut Vec<f32>,
        checkpoint: &[f32],
        di: usize,
        now: f64,
        span_name: &str,
    ) -> AttemptRun {
        let array_len = req.array_len;
        let cost = &self.cfg.cost;
        // The request's splitter policy selects the sorter family; the
        // deterministic instances differ only in `splitter_policy`.
        let deterministic = req.splitters == SplitterPolicy::Deterministic;
        let sorter = if deterministic {
            &self.det_sorter
        } else {
            &self.sorter
        };
        let fused = if deterministic {
            &self.det_fused
        } else {
            &self.fused
        };
        let warp = if deterministic {
            &self.det_warp
        } else {
            &self.warp
        };
        // Bucket overflows observed by the attempt (GAS variants only):
        // stashed out of the checkpointed closure for the metric below.
        let overflows = Cell::new(0u64);
        // L2+: even forced-variant GAS requests run whatever pipeline the
        // cost model prices cheapest — quality traded for headroom.
        let force_cheapest = self.ladder.enabled() && self.ladder.level() >= 2;
        let dev = &mut self.pool.devices[di];
        // `Gas` requests run whichever pipeline variant the cost model
        // projected cheaper on this device; `GasFused`/`GasWarp` force
        // their pipeline (which still falls back internally when the
        // arrays exceed its shared-memory layout).
        let variant = match req.algorithm {
            Algorithm::Gas => {
                cost.best_gas_variant(dev.spec(), sorter.config(), req.num_arrays, array_len)
                    .0
            }
            Algorithm::GasFused | Algorithm::GasWarp if force_cheapest => {
                cost.best_gas_variant(dev.spec(), sorter.config(), req.num_arrays, array_len)
                    .0
            }
            Algorithm::GasFused => GasVariant::Fused,
            Algorithm::GasWarp => GasVariant::Warp,
            Algorithm::Sta => GasVariant::ThreeKernel,
        };
        // What the cost model said this exact (device, pipeline) pairing
        // would bill — compared post-hoc against the simulator's actual
        // bill in the `gas_model_accuracy_rel_err` metric family.
        let predicted_ms = match (req.algorithm, variant) {
            (Algorithm::Sta, _) | (_, GasVariant::ThreeKernel) => {
                cost.device_ms(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
            (_, GasVariant::Fused) => {
                cost.device_ms_fused(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
            (_, GasVariant::Warp) => {
                cost.device_ms_warp(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
        };
        let variant_label = match req.algorithm {
            Algorithm::Sta => "sta",
            _ => variant.label(),
        };
        dev.breaker.on_dispatch(now);
        let mark = dev.gpu.bill_mark();
        let result = match (req.algorithm, variant) {
            (Algorithm::Sta, _) => {
                checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
                    thrust_sim::sta::sort_arrays(g, d, array_len).map(|_| ())
                })
            }
            (_, GasVariant::Warp) => {
                checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
                    warp.sort(g, d, array_len)
                        .map(|s| overflows.set(s.overflow.overflowed_buckets))
                })
            }
            (_, GasVariant::Fused) => {
                checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
                    fused
                        .sort(g, d, array_len)
                        .map(|s| overflows.set(s.overflow.overflowed_buckets))
                })
            }
            (_, GasVariant::ThreeKernel) => {
                checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
                    sorter
                        .sort(g, d, array_len)
                        .map(|s| overflows.set(s.overflow.overflowed_buckets))
                })
            }
        };
        let end_ms = match &result {
            Ok(()) => now + dev.gpu.billed_since(mark),
            Err(failed) => now + failed.wasted_ms,
        };
        AttemptRun {
            result,
            end_ms,
            predicted_ms,
            variant_label,
            overflows: overflows.get(),
        }
    }

    /// Runs one scheduling round for a request: the primary device
    /// attempt, a speculative hedge when the deadline is tight, the
    /// watchdog check on each, the hedge race, and outcome routing.
    fn execute(
        &mut self,
        mut p: Pending,
        di: usize,
        now: f64,
        queue: &mut Vec<Pending>,
        records: &mut Vec<RequestRecord>,
    ) {
        let attempt_no = p.attempts_made + 1;
        let span_name = if attempt_no == 1 {
            format!("sched/req-{}/attempt-1", p.req.id)
        } else {
            format!("recovery/req-{}/attempt-{attempt_no}", p.req.id)
        };
        let checkpoint = p.data.clone();

        // Hedge decision: a High/Critical request whose deadline slack at
        // dispatch is under the threshold gets a duplicate attempt on a
        // second idle device — unless the ladder says hedging is the
        // headroom we give up first (L1+).
        let hedge_di = if self.cfg.hedge_slack_ms > 0.0
            && !(self.ladder.enabled() && self.ladder.level() >= 1)
            && p.req.priority >= Priority::High
        {
            let est = self.projected_ms(self.pool.devices[di].spec(), &p.req);
            if p.req.deadline_ms - (now + est) < self.cfg.hedge_slack_ms {
                self.pick_hedge_device(&p, di, now)
            } else {
                None
            }
        } else {
            None
        };

        // The primary runs on the request's buffer; the hedge on a clone
        // of the checkpoint, so whichever result is kept can be adopted
        // wholesale.
        let primary = self.device_attempt(&p.req, &mut p.data, &checkpoint, di, now, &span_name);
        let mut runs: Vec<(usize, bool, AttemptRun)> = vec![(di, false, primary)];
        let mut hdata = Vec::new();
        if let Some(hdi) = hedge_di {
            hdata = checkpoint.clone();
            let hspan = format!("sched/req-{}/hedge-{attempt_no}", p.req.id);
            let run = self.device_attempt(&p.req, &mut hdata, &checkpoint, hdi, now, &hspan);
            runs.push((hdi, true, run));
        }

        // Watchdog assessment: a successful attempt billed over budget is
        // cancelled at its checkpoint; its result is no longer viable.
        let mut evals: Vec<Assessed> = Vec::new();
        for (adi, hedge, run) in runs {
            let budget = self.watchdog_budget_ms(adi, &p.req);
            let a = match &run.result {
                Ok(()) => {
                    let billed = run.end_ms - now;
                    let cancelled = budget
                        .filter(|b| billed > b + EPS)
                        .map(|b| format!("watchdog: billed {billed:.3} ms over budget {b:.3} ms"));
                    let viable = cancelled.is_none();
                    Assessed {
                        di: adi,
                        hedge,
                        end_ms: run.end_ms,
                        error: None,
                        transient: false,
                        cancelled,
                        predicted_ms: run.predicted_ms,
                        variant: run.variant_label,
                        viable,
                        overflows: run.overflows,
                    }
                }
                Err(failed) => Assessed {
                    di: adi,
                    hedge,
                    end_ms: run.end_ms,
                    error: Some(failed.error.to_string()),
                    transient: failed.error.is_transient(),
                    cancelled: None,
                    predicted_ms: run.predicted_ms,
                    variant: run.variant_label,
                    viable: false,
                    overflows: run.overflows,
                },
            };
            evals.push(a);
        }

        // Device side effects, in dispatch order.
        for a in &evals {
            let dev = &mut self.pool.devices[a.di];
            dev.busy_until_ms = a.end_ms;
            if a.error.is_some() {
                if a.transient {
                    dev.failed_attempts += 1;
                    dev.breaker.on_transient_failure(a.end_ms);
                } else {
                    dev.fatal_failures += 1;
                    dev.breaker.on_fatal();
                }
            } else if a.cancelled.is_some() {
                // Watchdog cancel: the device did finish, but too slowly
                // to trust — treat it like a transient failure for health
                // purposes and leave a marker in its trace.
                dev.watchdog_cancels += 1;
                dev.breaker.on_transient_failure(a.end_ms);
                let g = &mut dev.gpu;
                let span = g.begin_span(&format!("recovery/req-{}/watchdog-cancel", p.req.id));
                g.end_span(span);
            } else {
                dev.breaker.on_success();
            }
        }

        // The hedge race: earliest viable completion wins; exact ties go
        // to the seeded RNG (drawn only on a genuine tie, so unhedged
        // runs consume no extra randomness). The loser is cancelled.
        let viable: Vec<usize> = evals
            .iter()
            .enumerate()
            .filter(|(_, a)| a.viable)
            .map(|(i, _)| i)
            .collect();
        let winner = match viable.len() {
            0 => None,
            1 => Some(viable[0]),
            _ => {
                let best = viable
                    .iter()
                    .map(|&i| evals[i].end_ms)
                    .fold(f64::INFINITY, f64::min);
                let tied: Vec<usize> = viable
                    .iter()
                    .copied()
                    .filter(|&i| evals[i].end_ms == best)
                    .collect();
                if tied.len() > 1 {
                    Some(tied[self.rng.gen_range(0..tied.len())])
                } else {
                    Some(tied[0])
                }
            }
        };
        if let Some(wi) = winner {
            let wdev = evals[wi].di;
            for (i, a) in evals.iter_mut().enumerate() {
                if i != wi && a.viable {
                    a.viable = false;
                    a.cancelled = Some(format!("hedge: lost to dev{wdev}"));
                }
            }
        }

        // Adopt the winning buffer (or roll everything back: a primary
        // the watchdog cancelled still holds its discarded result).
        match winner {
            Some(wi) if evals[wi].hedge => p.data = hdata,
            Some(_) => {}
            None => p.data.copy_from_slice(&checkpoint),
        }

        for a in &evals {
            p.attempts.push(AttemptRecord {
                device: a.di,
                start_ms: now,
                end_ms: a.end_ms,
                error: a.error.clone(),
                transient: a.transient,
                predicted_ms: a.predicted_ms,
                variant: a.variant.to_string(),
                hedge: a.hedge,
                cancelled: a.cancelled.clone(),
            });
        }
        p.attempts_made += evals.len() as u32;

        if let Some(wi) = winner {
            let a = &evals[wi];
            let (wdi, end) = (a.di, a.end_ms);
            self.pool.devices[wdi].completed += 1;
            if a.overflows > 0 {
                // Overflow is an observable event, never a silent slow
                // path: surface the per-policy count in telemetry.
                self.registry.add(
                    "gas_bucket_overflows_total",
                    &[("policy", p.req.splitters.label())],
                    a.overflows as f64,
                );
            }
            let verified = bits_equal(&p.data, &p.oracle);
            records.push(RequestRecord {
                id: p.req.id,
                priority: p.req.priority,
                algorithm: p.req.algorithm,
                num_arrays: p.req.num_arrays,
                array_len: p.req.array_len,
                arrival_ms: p.req.arrival_ms,
                deadline_ms: p.req.deadline_ms,
                attempts: p.attempts,
                outcome: Outcome::Completed { device: wdi },
                completion_ms: Some(end),
                deadline_met: Some(end <= p.req.deadline_ms + EPS),
                verified: Some(verified),
            });
        } else {
            let end = evals.iter().map(|a| a.end_ms).fold(now, f64::max);
            p.last_device = Some(di);
            if p.attempts_made >= self.cfg.max_attempts.max(1) {
                let reason = format!(
                    "{} device attempts failed; degraded to host",
                    p.attempts_made
                );
                self.resolve_host(p, end, reason, records);
            } else {
                let backoff = self.cfg.backoff_base_ms * f64::powi(2.0, p.attempts_made as i32 - 1);
                p.not_before_ms = end + backoff.max(EPS);
                queue.push(p);
            }
        }
    }

    /// Sorts the request on the host (`cpu_ref`), modelling its cost on
    /// the virtual clock, and records the fallback.
    fn resolve_host(
        &mut self,
        p: Pending,
        at_ms: f64,
        reason: String,
        records: &mut Vec<RequestRecord>,
    ) {
        let mut data = p.data;
        cpu_ref::sort_arrays_seq(&mut data, p.req.array_len);
        let verified = bits_equal(&data, &p.oracle);
        let completion = at_ms + self.cfg.cost.host_ms(p.req.num_arrays, p.req.array_len);
        if let Some(di) = p.last_device {
            // Leave the degradation visible in the failing device's trace.
            let g = &mut self.pool.devices[di].gpu;
            let span = g.begin_span(&format!("recovery/req-{}/cpu-fallback", p.req.id));
            g.end_span(span);
        }
        records.push(RequestRecord {
            id: p.req.id,
            priority: p.req.priority,
            algorithm: p.req.algorithm,
            num_arrays: p.req.num_arrays,
            array_len: p.req.array_len,
            arrival_ms: p.req.arrival_ms,
            deadline_ms: p.req.deadline_ms,
            attempts: p.attempts,
            outcome: Outcome::CpuFallback { reason },
            completion_ms: Some(completion),
            deadline_met: Some(completion <= p.req.deadline_ms + EPS),
            verified: Some(verified),
        });
    }

    fn dropped(req: SortRequest, attempts: Vec<AttemptRecord>, outcome: Outcome) -> RequestRecord {
        RequestRecord {
            id: req.id,
            priority: req.priority,
            algorithm: req.algorithm,
            num_arrays: req.num_arrays,
            array_len: req.array_len,
            arrival_ms: req.arrival_ms,
            deadline_ms: req.deadline_ms,
            attempts,
            outcome,
            completion_ms: None,
            deadline_met: None,
            verified: None,
        }
    }

    fn build_report(&mut self, workload: &Workload, records: Vec<RequestRecord>) -> ServiceReport {
        let mut completed = 0;
        let mut cpu_fallbacks = 0;
        let mut shed = 0;
        let mut rejected = 0;
        let mut deadline_hits = 0;
        let mut deadline_misses = 0;
        let mut makespan: f64 = 0.0;
        for r in &records {
            match &r.outcome {
                Outcome::Completed { .. } => completed += 1,
                Outcome::CpuFallback { .. } => cpu_fallbacks += 1,
                Outcome::Shed { .. } => shed += 1,
                Outcome::Rejected { .. } => rejected += 1,
            }
            match r.deadline_met {
                Some(true) => deadline_hits += 1,
                Some(false) => deadline_misses += 1,
                None => {}
            }
            if let Some(c) = r.completion_ms {
                makespan = makespan.max(c);
            }
            record_request_metrics(&mut self.registry, r);
        }
        for d in &self.pool.devices {
            let device = format!("dev{}", d.index);
            let labels = [("device", device.as_str())];
            self.registry
                .set_gauge("gas_device_busy_ms", &labels, d.gpu.elapsed_ms());
            let utilization = if makespan > 0.0 {
                100.0 * d.gpu.elapsed_ms() / makespan
            } else {
                0.0
            };
            self.registry
                .set_gauge("gas_device_utilization_pct", &labels, utilization);
            self.registry.set_gauge(
                "gas_breaker_blacklisted",
                &labels,
                if d.breaker.is_blacklisted() { 1.0 } else { 0.0 },
            );
            self.registry.add(
                "gas_breaker_trips_total",
                &labels,
                f64::from(d.breaker.trips()),
            );
            self.registry.add(
                "gas_breaker_transitions_total",
                &labels,
                f64::from(d.breaker.transitions()),
            );
            for fault in d.gpu.injected_faults() {
                self.registry.inc(
                    "gas_device_injected_faults_total",
                    &[("device", &device), ("kind", &fault.kind.to_string())],
                );
            }
            if d.deaths() > 0 {
                self.registry
                    .add("gas_device_deaths_total", &labels, d.deaths() as f64);
            }
        }
        if self.ladder.enabled() {
            // Close the ladder's books: attribute the tail of the run to
            // its final level and publish the terminal gauges.
            self.ladder.touch(makespan);
            self.registry
                .set_gauge("gas_degradation_level", &[], f64::from(self.ladder.level()));
            self.registry.set_gauge(
                "gas_degradation_max_level",
                &[],
                f64::from(self.ladder.max_level()),
            );
        }
        let devices = self
            .pool
            .devices
            .iter()
            .map(|d| DeviceReport {
                index: d.index,
                name: d.spec().name.clone(),
                completed: d.completed,
                failed_attempts: d.failed_attempts,
                fatal_failures: d.fatal_failures,
                injected_faults: d.gpu.injected_faults().len(),
                error_faults: d.error_faults(),
                breaker_trips: d.breaker.trips(),
                blacklisted: d.breaker.is_blacklisted(),
                device_ms: d.gpu.elapsed_ms(),
                deaths: d.deaths(),
                watchdog_cancels: d.watchdog_cancels,
            })
            .collect();
        let mut report = ServiceReport {
            seed: self.cfg.seed,
            requests: workload.requests.len(),
            completed,
            cpu_fallbacks,
            shed,
            shed_by_priority: ServiceReport::shed_by_priority_from_records(&records),
            rejected,
            deadline_hits,
            deadline_misses,
            makespan_ms: makespan,
            slo: SloReport::from_registry(&self.registry),
            degradation: DegradationReport::default(),
            devices,
            records,
        };
        let (won, lost, cancelled) = report.hedge_outcomes_from_records();
        report.degradation = DegradationReport {
            enabled: self.ladder.enabled(),
            final_level: self.ladder.level(),
            max_level: self.ladder.max_level(),
            transitions: self.ladder.transitions().to_vec(),
            time_at_level_ms: self.ladder.time_at_level_ms().to_vec(),
            hedges_won: won,
            hedges_lost: lost,
            hedges_cancelled: cancelled,
            watchdog_cancels: report.watchdog_cancels_by_device().iter().sum(),
            device_deaths: report.devices.iter().map(|d| d.deaths).sum(),
            degradation_sheds: report.degradation_sheds_from_records(),
        };
        report
    }
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parse_mix;
    use crate::request::{Priority, WorkloadConfig};

    fn small_workload(seed: u64, requests: usize) -> Workload {
        Workload::generate(&WorkloadConfig {
            seed,
            requests,
            arrays: (4, 16),
            array_len: (16, 48),
            ..WorkloadConfig::default()
        })
    }

    fn service(devices: usize, cfg: SchedulerConfig, faults: Option<&FaultPlan>) -> SortService {
        SortService::new(parse_mix("test", devices).unwrap(), cfg, faults).unwrap()
    }

    #[test]
    fn clean_run_completes_everything_verified() {
        let w = small_workload(1, 40);
        let mut s = service(2, SchedulerConfig::default(), None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.requests, 40);
        assert_eq!(
            report.completed + report.cpu_fallbacks + report.rejected,
            40
        );
        assert_eq!(report.shed, 0);
        assert!(report.completed > 0);
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        for d in &report.devices {
            assert_eq!(d.failed_attempts, 0);
            assert_eq!(d.error_faults, 0);
            assert!(!d.blacklisted);
        }
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let w = small_workload(2, 60);
        let plan = FaultPlan::seeded(5)
            .with_launch_failure(0.02)
            .with_transfer_abort(0.02);
        let cfg = SchedulerConfig {
            seed: 9,
            ..SchedulerConfig::default()
        };
        let a = service(3, cfg.clone(), Some(&plan)).run(&w).unwrap();
        let b = service(3, cfg, Some(&plan)).run(&w).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json(), "byte-identical reports");
    }

    #[test]
    fn faulty_run_reconciles_with_injector_logs() {
        let w = small_workload(3, 80);
        let plan = FaultPlan::seeded(11)
            .with_launch_failure(0.05)
            .with_transfer_abort(0.05)
            .with_transfer_corruption(0.05)
            .with_stream_stall(0.05, 0.2);
        let mut s = service(3, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let failures: u32 = report.devices.iter().map(|d| d.failed_attempts).sum();
        assert!(failures > 0, "the plan should have hurt something");
        // Retries actually moved between devices when possible.
        let redispatched = report
            .records
            .iter()
            .any(|r| r.attempts.len() > 1 && r.attempts[0].device != r.attempts[1].device);
        assert!(
            redispatched,
            "at least one retry went to a different device"
        );
    }

    #[test]
    fn breaker_trips_under_a_hot_fault_rate_and_work_degrades() {
        let w = small_workload(4, 50);
        let plan = FaultPlan::seeded(3).with_launch_failure(1.0);
        let cfg = SchedulerConfig {
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_ms: 5.0,
            },
            ..SchedulerConfig::default()
        };
        let mut s = service(2, cfg, Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(report.completed, 0, "no device attempt can succeed");
        assert!(report.devices.iter().any(|d| d.breaker_trips > 0));
        assert!(report.cpu_fallbacks > 0, "work degraded to host");
    }

    #[test]
    fn overload_sheds_lowest_priority_first_and_never_silently() {
        // A burst of identical requests at t=0 against a queue of 1:
        // almost everything must be shed, host-served or rejected — and
        // every single request must leave an explicit record.
        let mut w = Workload::generate(&WorkloadConfig {
            seed: 5,
            requests: 30,
            arrays: (64, 64),
            array_len: (96, 96),
            mean_gap_ms: 0.0,
            ..WorkloadConfig::default()
        });
        for r in &mut w.requests {
            r.deadline_ms = 0.25;
        }
        let cfg = SchedulerConfig {
            max_queue_depth: 1,
            ..SchedulerConfig::default()
        };
        let mut s = service(1, cfg, None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(report.records.len(), 30, "no silent drops");
        assert!(
            report.completed < 30,
            "one device and one queue slot cannot absorb the burst"
        );
        assert!(report.shed + report.rejected + report.cpu_fallbacks > 0);
        // Shedding order: a critical request is only ever shed once no
        // lower-priority request survives to be served instead.
        let crit_shed = report
            .records
            .iter()
            .filter(|r| {
                r.priority == Priority::Critical && matches!(r.outcome, Outcome::Shed { .. })
            })
            .count();
        let lows_not_shed = report
            .records
            .iter()
            .filter(|r| r.priority == Priority::Low && !matches!(r.outcome, Outcome::Shed { .. }))
            .filter(|r| matches!(r.outcome, Outcome::Completed { .. }))
            .count();
        if crit_shed > 0 {
            assert_eq!(
                lows_not_shed, 0,
                "no low-priority request completes on-device while criticals are shed"
            );
        }
    }

    #[test]
    fn oversized_batches_are_rejected_or_host_served_with_reason() {
        let w = Workload {
            requests: vec![SortRequest {
                id: 0,
                num_arrays: 10_000_000,
                array_len: 4096,
                data_seed: 1,
                algorithm: Algorithm::Gas,
                splitters: SplitterPolicy::default(),
                priority: Priority::Normal,
                arrival_ms: 0.0,
                deadline_ms: 0.5,
            }],
        };
        let mut s = service(1, SchedulerConfig::default(), None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.rejected, 1);
        match &report.records[0].outcome {
            Outcome::Rejected { reason } => {
                assert!(reason.contains("fits no healthy pool device"), "{reason}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn sta_requests_are_served_too() {
        let mut w = small_workload(6, 20);
        for r in &mut w.requests {
            r.algorithm = Algorithm::Sta;
        }
        let plan = FaultPlan::seeded(2).with_transfer_abort(0.05);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert!(report.completed > 0);
    }

    #[test]
    fn gas_fused_requests_are_served_too() {
        let mut w = small_workload(10, 20);
        for r in &mut w.requests {
            r.algorithm = Algorithm::GasFused;
        }
        let plan = FaultPlan::seeded(4).with_launch_failure(0.05);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert!(report.completed > 0);
        // The forced-fused requests actually ran the fused kernel.
        let fused_launches = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().kernels.iter())
            .filter(|k| k.name == "gas_fused")
            .count();
        assert!(fused_launches > 0, "forced gas-fused requests ran fused");
    }

    #[test]
    fn gas_warp_requests_are_served_too() {
        let mut w = small_workload(11, 20);
        for r in &mut w.requests {
            r.algorithm = Algorithm::GasWarp;
        }
        let plan = FaultPlan::seeded(6).with_launch_failure(0.05);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert!(report.completed > 0);
        // The forced-warp requests actually ran the warp kernel.
        let warp_launches = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().kernels.iter())
            .filter(|k| k.name == "gas_warp")
            .count();
        assert!(warp_launches > 0, "forced gas-warp requests ran gas_warp");
    }

    #[test]
    fn deterministic_policy_requests_are_served_by_the_det_kernels() {
        // Small arrays (p = 1–2 buckets) keep the cost model on the
        // three-kernel pipeline, so the deterministic Phase-1 kernel name
        // is visible in the timeline.
        let mut w = Workload::generate(&WorkloadConfig {
            seed: 12,
            requests: 20,
            arrays: (4, 8),
            array_len: (16, 24),
            sta_fraction: 0.0,
            ..WorkloadConfig::default()
        });
        for r in &mut w.requests {
            r.algorithm = Algorithm::Gas;
            r.splitters = array_sort::SplitterPolicy::Deterministic;
        }
        let mut s = service(2, SchedulerConfig::default(), None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert!(report.completed > 0);
        let det_launches = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().kernels.iter())
            .filter(|k| k.name == "gas_phase1_splitters_det")
            .count();
        assert!(
            det_launches > 0,
            "deterministic requests must run the deterministic Phase-1 kernel"
        );
    }

    #[test]
    fn deterministic_requests_replay_bit_identically() {
        let w = Workload::generate(&WorkloadConfig {
            seed: 13,
            requests: 40,
            arrays: (4, 16),
            array_len: (16, 48),
            deterministic_fraction: 0.5,
            ..WorkloadConfig::default()
        });
        let plan = FaultPlan::seeded(7).with_launch_failure(0.03);
        let cfg = SchedulerConfig {
            seed: 21,
            ..SchedulerConfig::default()
        };
        let a = service(2, cfg.clone(), Some(&plan)).run(&w).unwrap();
        let b = service(2, cfg, Some(&plan)).run(&w).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json(), "byte-identical reports");
        assert_eq!(a.invariant_violations(), Vec::<String>::new());
    }

    #[test]
    fn cost_model_dispatches_the_fused_variant_where_it_is_cheaper() {
        // Paper-shaped arrays (n = 2000): the cost model projects the
        // warp-multisplit pipeline cheapest, so plain `gas` requests must
        // be served by the `gas_warp` kernel — no variant requested.
        let w = Workload {
            requests: (0..4)
                .map(|id| SortRequest {
                    id,
                    num_arrays: 4,
                    array_len: 2000,
                    data_seed: 100 + id,
                    algorithm: Algorithm::Gas,
                    splitters: SplitterPolicy::default(),
                    priority: Priority::Normal,
                    arrival_ms: id as f64 * 0.1,
                    deadline_ms: 1e9,
                })
                .collect(),
        };
        let mut s = SortService::new(
            parse_mix("k40c", 1).unwrap(),
            SchedulerConfig::default(),
            None,
        )
        .unwrap();
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(report.completed, 4);
        let kernels: Vec<String> = s.pool().devices[0]
            .gpu
            .timeline()
            .kernels
            .iter()
            .map(|k| k.name.clone())
            .collect();
        assert!(
            kernels.iter().any(|n| n == "gas_warp"),
            "cost model should route n=2000 gas requests to the warp kernel: {kernels:?}"
        );
        assert!(
            !kernels.iter().any(|n| n.starts_with("gas_phase")),
            "no three-kernel launches expected for these shapes: {kernels:?}"
        );
    }

    #[test]
    fn metrics_reconcile_with_the_report() {
        let w = small_workload(3, 80);
        let plan = FaultPlan::seeded(11)
            .with_launch_failure(0.05)
            .with_transfer_abort(0.05)
            .with_stream_stall(0.05, 0.2);
        let mut s = service(3, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let reg = s.metrics();
        assert_eq!(
            reg.counter_sum("gas_requests_total", &[]) as usize,
            report.requests
        );
        assert_eq!(
            reg.counter_sum("gas_requests_total", &[("outcome", "completed")]) as usize,
            report.completed
        );
        assert_eq!(
            reg.counter_sum("gas_fallback_total", &[]) as usize,
            report.cpu_fallbacks
        );
        assert_eq!(reg.counter_sum("gas_shed_total", &[]) as usize, report.shed);
        assert_eq!(
            reg.counter_sum("gas_deadline_total", &[("result", "hit")]) as usize,
            report.deadline_hits
        );
        // Transient attempt metrics equal the injectors' error faults.
        let injected: usize = report.devices.iter().map(|d| d.error_faults).sum();
        assert_eq!(
            reg.counter_sum("gas_attempts_total", &[("result", "transient")]) as usize,
            injected
        );
        // Every successful device attempt contributed a model-accuracy
        // observation.
        let successes = report
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .filter(|a| a.error.is_none())
            .count();
        let acc = reg.histogram_sum("gas_model_accuracy_rel_err", &[]);
        assert_eq!(acc.count as usize, successes);
        assert!(acc.count > 0, "something completed on-device");
        // The SLO section is exactly what the records imply.
        assert_eq!(report.slo, report.slo_from_records());
        assert_eq!(report.slo.by_priority.len(), 4);
    }

    #[test]
    fn metrics_snapshots_are_byte_identical_across_runs() {
        let w = small_workload(2, 60);
        let plan = FaultPlan::seeded(5)
            .with_launch_failure(0.02)
            .with_transfer_abort(0.02);
        let cfg = SchedulerConfig {
            seed: 9,
            ..SchedulerConfig::default()
        };
        let mut a = service(3, cfg.clone(), Some(&plan));
        a.run(&w).unwrap();
        let mut b = service(3, cfg, Some(&plan));
        b.run(&w).unwrap();
        let (ja, jb) = (
            a.metrics_snapshot().to_json(),
            b.metrics_snapshot().to_json(),
        );
        assert_eq!(ja, jb, "metrics inherit the bit-reproducibility contract");
        assert!(!a.metrics().is_empty());
    }

    #[test]
    fn tampered_slo_or_shed_sections_are_caught() {
        let w = small_workload(1, 40);
        let mut s = service(2, SchedulerConfig::default(), None);
        let clean = s.run(&w).unwrap();
        assert_eq!(clean.invariant_violations(), Vec::<String>::new());

        let mut tampered = clean.clone();
        tampered.slo.by_priority[1].attainment_pct += 1.0;
        assert!(
            tampered
                .invariant_violations()
                .iter()
                .any(|v| v.contains("slo section")),
            "an edited SLO row must fail reconciliation"
        );

        let mut tampered = clean.clone();
        tampered.shed_by_priority[0].shed += 1;
        assert!(
            !tampered.invariant_violations().is_empty(),
            "an edited shed count must fail reconciliation"
        );
    }

    #[test]
    fn heterogeneous_pool_prefers_the_faster_device() {
        let w = small_workload(7, 30);
        let specs = parse_mix("k40c,test", 2).unwrap();
        let mut s = SortService::new(specs, SchedulerConfig::default(), None).unwrap();
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let k40 = &report.devices[0];
        let test = &report.devices[1];
        assert!(
            k40.completed >= test.completed,
            "the 15-SM K40c should serve at least as many requests ({} vs {})",
            k40.completed,
            test.completed
        );
    }

    #[test]
    fn watchdog_cancels_stall_storms_and_work_still_resolves() {
        use gpu_sim::FaultPlan;
        let w = small_workload(20, 30);
        // Every operation stalls for 50 virtual ms: each attempt succeeds
        // but bills catastrophically over the cost model's worst case.
        let plan = FaultPlan::seeded(8).with_stream_stall(1.0, 50.0);
        let cfg = SchedulerConfig {
            timeout_slack: 2.0,
            ..SchedulerConfig::default()
        };
        let mut s = service(2, cfg, Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let cancels: u32 = report.devices.iter().map(|d| d.watchdog_cancels).sum();
        assert!(cancels > 0, "a 100% stall storm must blow the budget");
        assert_eq!(report.degradation.watchdog_cancels, cancels as usize);
        // Cancelled attempts are successes whose result was discarded:
        // no error, a watchdog reason, and they never count as winners.
        let wd: Vec<&AttemptRecord> = report
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .filter(|a| {
                a.cancelled
                    .as_deref()
                    .is_some_and(|c| c.starts_with("watchdog"))
            })
            .collect();
        assert_eq!(wd.len(), cancels as usize);
        assert!(wd.iter().all(|a| a.error.is_none() && !a.is_winner()));
        assert_eq!(
            s.metrics().counter_sum("gas_watchdog_cancels_total", &[]) as usize,
            wd.len()
        );
        // Cancelled work was re-dispatched or degraded, never lost.
        assert_eq!(
            report.completed + report.cpu_fallbacks + report.shed + report.rejected,
            30
        );
        // The cancel left its marker in the device traces.
        let markers = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter())
            .filter(|sp| sp.name.contains("/watchdog-cancel"))
            .count();
        assert_eq!(markers, cancels as usize);
    }

    #[test]
    fn watchdog_leaves_clean_runs_alone() {
        let w = small_workload(1, 40);
        let cfg = SchedulerConfig {
            timeout_slack: 3.0,
            ..SchedulerConfig::default()
        };
        let mut s = service(2, cfg, None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(
            report
                .devices
                .iter()
                .map(|d| d.watchdog_cancels)
                .sum::<u32>(),
            0,
            "a clean attempt never exceeds worst-case × 3"
        );
        assert!(report.completed > 0);
    }

    #[test]
    fn hedging_tight_deadlines_races_and_replays_byte_identically() {
        let mut w = small_workload(9, 40);
        for r in &mut w.requests {
            r.priority = Priority::High;
        }
        // A huge slack threshold makes every High request hedge whenever
        // a second idle device exists.
        let cfg = SchedulerConfig {
            seed: 4,
            hedge_slack_ms: 1e6,
            ..SchedulerConfig::default()
        };
        let mut s = service(3, cfg.clone(), None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let (won, lost, cancelled) = report.hedge_outcomes_from_records();
        assert!(won + lost + cancelled > 0, "hedges must fire");
        assert_eq!(
            (
                report.degradation.hedges_won,
                report.degradation.hedges_lost,
                report.degradation.hedges_cancelled
            ),
            (won, lost, cancelled)
        );
        // Exactly one kept result per request, and every completed
        // request's output still matches the oracle regardless of which
        // side of the race won.
        for r in &report.records {
            assert!(
                r.attempts.iter().filter(|a| a.is_winner()).count() <= 1,
                "request {} kept more than one result",
                r.id
            );
        }
        // Identical devices race to an exact tie, so both outcomes occur
        // and every race's loser shows up as wasted device time.
        assert!(
            s.metrics().counter_sum("gas_hedge_wasted_ms_total", &[]) > 0.0,
            "a settled race has a loser, and its bill is accounted"
        );
        assert_eq!(
            s.metrics().counter_sum("gas_hedges_total", &[]) as usize,
            won + lost + cancelled
        );
        let hedge_spans = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter())
            .filter(|sp| sp.name.contains("/hedge-"))
            .count();
        assert!(hedge_spans > 0, "hedge attempts run in their own spans");
        // Racing on the seeded RNG keeps the replay contract intact.
        let mut s2 = service(3, cfg, None);
        let report2 = s2.run(&w).unwrap();
        assert_eq!(report.to_json(), report2.to_json(), "byte-identical");
        assert_eq!(
            s.metrics_snapshot().to_json(),
            s2.metrics_snapshot().to_json()
        );
    }

    #[test]
    fn device_death_permanently_blacklists_and_the_pool_survives() {
        use gpu_sim::{FaultKind, FaultOp, FaultPlan};
        let w = small_workload(5, 40);
        // Scripted faults ignore the per-device reseed: every device dies
        // at its own 5th kernel launch.
        let plan = FaultPlan::seeded(1).with_scripted(FaultOp::Launch, 4, FaultKind::DeviceDeath);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        for d in &report.devices {
            assert_eq!(d.deaths, 1, "device {} must die exactly once", d.index);
            assert!(d.blacklisted, "death blacklists device {} forever", d.index);
            assert_eq!(d.fatal_failures, 1, "the death is the only fatal");
        }
        assert_eq!(report.degradation.device_deaths, 2);
        // Exactly one attempt per device carries the permanent error; the
        // fail-fast rejections afterwards never masquerade as new faults.
        let death_attempts = report
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .filter(|a| {
                !a.transient
                    && a.error
                        .as_deref()
                        .is_some_and(|e| e.contains("device-death"))
            })
            .count();
        assert_eq!(death_attempts, 2);
        assert_eq!(
            s.metrics().counter_sum("gas_device_deaths_total", &[]) as usize,
            2
        );
        // The pool kept serving: every request has an explicit outcome and
        // post-death work degraded to the host.
        assert_eq!(
            report.completed + report.cpu_fallbacks + report.shed + report.rejected,
            40
        );
        assert!(report.completed > 0, "pre-death work completed on-device");
        assert!(report.cpu_fallbacks > 0, "post-death work went to the host");
    }

    #[test]
    fn degradation_ladder_engages_and_reports_non_vacuously() {
        use gpu_sim::{FaultKind, FaultOp, FaultPlan};
        let w = small_workload(6, 40);
        let plan = FaultPlan::seeded(2).with_scripted(FaultOp::Launch, 2, FaultKind::DeviceDeath);
        let cfg = SchedulerConfig {
            degrade: true,
            ..SchedulerConfig::default()
        };
        let mut s = service(2, cfg.clone(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let deg = &report.degradation;
        assert!(deg.enabled);
        assert!(
            !deg.transitions.is_empty(),
            "device loss must move the ladder"
        );
        assert_eq!(deg.max_level, 4, "both devices dead ends at host-only");
        assert_eq!(deg.final_level, 4, "dead devices never come back");
        assert!(deg.time_at_level_ms.iter().sum::<f64>() > 0.0);
        // L4 arrivals are host-served (or shed) by the ladder itself,
        // with the level in the reason.
        let l4_records = report
            .records
            .iter()
            .filter(|r| match &r.outcome {
                Outcome::CpuFallback { reason } | Outcome::Shed { reason } => {
                    reason.starts_with("degradation L4")
                }
                _ => false,
            })
            .count();
        assert!(l4_records > 0, "post-L4 arrivals go through the ladder");
        // Transitions are visible in telemetry and in the trace.
        assert!(
            s.metrics()
                .counter_sum("gas_degradation_transitions_total", &[])
                >= deg.transitions.len() as f64
        );
        assert!(s
            .metrics_snapshot()
            .to_json()
            .contains("gas_degradation_level"));
        let degrade_spans = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter())
            .filter(|sp| sp.name.starts_with("sched/degrade/"))
            .count();
        assert_eq!(degrade_spans, deg.transitions.len());
        // Ladder runs replay byte-identically too.
        let mut s2 = service(2, cfg, Some(&plan));
        let report2 = s2.run(&w).unwrap();
        assert_eq!(report.to_json(), report2.to_json());
    }

    #[test]
    fn sched_and_recovery_spans_reach_the_trace() {
        let w = small_workload(8, 10);
        let plan = FaultPlan::seeded(1).with_launch_failure(0.3);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let span_names: Vec<String> = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter().map(|sp| sp.name.clone()))
            .collect();
        assert!(
            span_names.iter().any(|n| n.starts_with("sched/req-")),
            "{span_names:?}"
        );
        if report.devices.iter().any(|d| d.failed_attempts > 0) {
            assert!(
                span_names.iter().any(|n| n.starts_with("recovery/req-")),
                "{span_names:?}"
            );
        }
    }
}
