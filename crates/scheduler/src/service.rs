//! The deadline-aware scheduling loop.
//!
//! [`SortService::run`] drains a [`Workload`] through a [`DevicePool`]
//! on a single **virtual clock**: time only moves when the next event
//! (an arrival, a device finishing, a retry backoff expiring, a breaker
//! cooldown ending) says so, and every duration comes from the
//! simulator's own cycle bills. Combined with seeded tie-breaking this
//! makes a soak run over thousands of requests bit-reproducible.
//!
//! Per request the service:
//!
//! 1. **admits or refuses** on arrival — a batch that fits no healthy
//!    device, or whose projected completion (queue backlog spread over
//!    healthy devices plus the cost-model estimate) blows its deadline,
//!    is rejected with the reason in the report;
//! 2. **dispatches** the highest-priority runnable request (EDF within
//!    a priority class) to the healthy idle device with the lowest
//!    estimated service time, breaking exact ties with the seeded RNG;
//! 3. **retries with backoff** after a transient injected fault — the
//!    attempt is rolled back via [`array_sort::checkpointed_attempt`]
//!    and re-dispatched, *preferring a different device* than the one
//!    that just failed;
//! 4. **degrades gracefully** — exhausted retries (or an overload shed
//!    whose deadline is still feasible on host) fall back to
//!    [`array_sort::cpu_ref`]; overload sheds the lowest-priority
//!    queued request first, always with an explicit record.
//!
//! Device attempts run inside `sched/req-N/attempt-1` spans, retries
//! inside `recovery/req-N/attempt-K`, host fallbacks leave a
//! `recovery/req-N/cpu-fallback` marker — all through the existing
//! [`gpu_sim::trace`] pipeline, so a pool trace shows the whole story.
//!
//! On top of that sits the tail-tolerance layer (all off by default,
//! enabled via [`SchedulerConfig`]):
//!
//! * **Attempt watchdog** — every attempt carries a budget of
//!   `CostModel::device_ms_worst × timeout_slack`; a *successful*
//!   attempt whose bill exceeds it (a stall storm) is cancelled at the
//!   checkpoint, leaves a `recovery/req-N/watchdog-cancel` marker, and
//!   the request is re-dispatched with backoff to a different device.
//! * **Request hedging** — a High/Critical request whose deadline slack
//!   at dispatch is below `hedge_slack_ms` gets a speculative duplicate
//!   attempt on a second idle device (`sched/req-N/hedge-K` span).
//!   First completion wins — exact ties broken by the seeded RNG — and
//!   the loser is cancelled at its checkpoint with its wasted time
//!   accounted in `gas_hedges_total` / `gas_hedge_wasted_ms_total`.
//! * **Device death** — the permanent
//!   [`gpu_sim::FaultKind::DeviceDeath`] fault rides the fatal path:
//!   the breaker blacklists the device forever, the in-flight attempt
//!   rolls back to its checkpoint and re-dispatches, and the pool
//!   serves on down to one device, then the host.
//! * **Degradation ladder** — see [`crate::degrade`]: L0 normal → L1 no
//!   hedging → L2 cheapest GAS variant → L3 shed low priority → L4
//!   host-only, escalating immediately and recovering with hysteresis,
//!   every transition a `sched/degrade/*` span and a metric.

use std::cell::Cell;
use std::collections::VecDeque;

use array_sort::{
    checkpointed_attempt, cpu_ref, ArraySortConfig, FailedAttempt, FusedSort, FusedStrategy,
    GpuArraySort, SplitterPolicy,
};
use gpu_sim::FaultPlan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use telemetry::{Registry, Snapshot};

use crate::breaker::BreakerConfig;
use crate::cache::{CacheKey, ResultCache};
use crate::coalesce;
use crate::degrade::DegradationLadder;
use crate::estimate::{CostModel, GasVariant};
use crate::pool::DevicePool;
use crate::report::{
    record_request_metrics, AttemptRecord, CacheReport, DegradationReport, DeviceReport, Outcome,
    RequestRecord, ServiceReport, SloReport,
};
use crate::request::{Algorithm, Priority, SortRequest, Workload};

/// Slop for virtual-time comparisons.
const EPS: f64 = 1e-9;

/// Scheduler tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Seed for the tie-breaking RNG.
    pub seed: u64,
    /// Queue depth beyond which the lowest-priority request is shed.
    pub max_queue_depth: usize,
    /// Device attempts per request (across all devices) before the
    /// host fallback. Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Base retry backoff, doubled per failed attempt.
    pub backoff_base_ms: f64,
    /// Per-device circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Admission cost model.
    pub cost: CostModel,
    /// Watchdog slack factor: an attempt's budget is
    /// `device_ms_worst × timeout_slack`; a successful attempt billed
    /// over budget is cancelled at the checkpoint and re-dispatched.
    /// `0.0` (the default) disables the watchdog.
    #[serde(default)]
    pub timeout_slack: f64,
    /// Hedging threshold: a High/Critical request whose deadline slack
    /// at dispatch falls below this many virtual milliseconds gets a
    /// speculative duplicate attempt on a second idle device. `0.0`
    /// (the default) disables hedging.
    #[serde(default)]
    pub hedge_slack_ms: f64,
    /// Enables the graceful-degradation ladder ([`crate::degrade`]).
    #[serde(default)]
    pub degrade: bool,
    /// Coalescing admission window, virtual ms: freshly admitted
    /// requests are held up to this long (never past the last instant
    /// their deadline stays feasible) so compatible peers can merge into
    /// one mega-batch launch. `0.0` (the default) disables coalescing —
    /// the legacy one-request-per-launch path, byte-identical to
    /// pre-coalescing runs. Negative means *auto*: the cost model picks
    /// the window from the pool ([`CostModel::auto_batch_window_ms`]).
    #[serde(default)]
    pub batch_window_ms: f64,
    /// Capacity of the content-hash result cache, in entries. `0` (the
    /// default) disables the cache.
    #[serde(default)]
    pub cache_entries: usize,
    /// Runs coalesced GAS launches through the per-device streamed
    /// pipeline: member k+1's upload overlaps member k's kernel while
    /// member k−1 downloads, on three streams per device, with the
    /// attempt billed at quiesce. Off by default (sequential dispatch).
    #[serde(default)]
    pub overlap: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            max_queue_depth: 16,
            max_attempts: 3,
            backoff_base_ms: 2.0,
            breaker: BreakerConfig::default(),
            cost: CostModel::default(),
            timeout_slack: 0.0,
            hedge_slack_ms: 0.0,
            degrade: false,
            batch_window_ms: 0.0,
            cache_entries: 0,
            overlap: false,
        }
    }
}

/// An admitted request waiting for (re)dispatch.
struct Pending {
    req: SortRequest,
    data: Vec<f32>,
    oracle: Vec<f32>,
    est_ms: f64,
    attempts_made: u32,
    attempts: Vec<AttemptRecord>,
    not_before_ms: f64,
    last_device: Option<usize>,
    cache_key: Option<CacheKey>,
}

/// The service: a device pool plus the scheduling state.
pub struct SortService {
    cfg: SchedulerConfig,
    pool: DevicePool,
    sorter: GpuArraySort,
    fused: FusedSort,
    warp: FusedSort,
    det_sorter: GpuArraySort,
    det_fused: FusedSort,
    det_warp: FusedSort,
    rng: ChaCha8Rng,
    registry: Registry,
    ladder: DegradationLadder,
    cache: Option<ResultCache>,
    /// The coalescing window in force for the current run:
    /// `cfg.batch_window_ms`, or the cost-model choice when that is
    /// negative. Zero disables coalescing.
    window_ms: f64,
}

/// One device attempt's raw outcome, before watchdog and hedge-race
/// routing.
struct AttemptRun {
    result: Result<(), FailedAttempt>,
    end_ms: f64,
    predicted_ms: f64,
    variant_label: &'static str,
    overflows: u64,
}

/// An attempt after watchdog assessment: what goes into the record,
/// plus whether its result is still in the running.
struct Assessed {
    di: usize,
    hedge: bool,
    end_ms: f64,
    error: Option<String>,
    transient: bool,
    cancelled: Option<String>,
    predicted_ms: f64,
    variant: &'static str,
    viable: bool,
    overflows: u64,
}

impl SortService {
    /// Builds a service over `specs`. With `faults`, device `i` runs
    /// under the plan reseeded `seed + i` (see [`DevicePool::new`]).
    pub fn new(
        specs: Vec<gpu_sim::DeviceSpec>,
        cfg: SchedulerConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<Self, String> {
        let pool = DevicePool::new(specs, cfg.breaker, faults)?;
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let det_cfg = ArraySortConfig {
            splitter_policy: SplitterPolicy::Deterministic,
            ..Default::default()
        };
        let build = |e: array_sort::ConfigError| format!("deterministic sorter config: {e:?}");
        let degrade = cfg.degrade;
        Ok(Self {
            cfg,
            pool,
            sorter: GpuArraySort::new(),
            fused: FusedSort::new(),
            warp: FusedSort::warp(),
            det_sorter: GpuArraySort::with_config(det_cfg.clone()).map_err(build)?,
            det_fused: FusedSort::with_config(det_cfg.clone()).map_err(build)?,
            det_warp: FusedSort::with_config_and_strategy(det_cfg, FusedStrategy::WarpConflictFree)
                .map_err(build)?,
            rng,
            registry: Registry::new(),
            ladder: DegradationLadder::new(degrade),
            cache: None,
            window_ms: 0.0,
        })
    }

    /// The device pool — for trace export after a run.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The metric registry populated by the last [`SortService::run`]
    /// (empty before the first run). The soak command merges these
    /// across seeds.
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// The last run's metrics frozen into a [`Snapshot`] — the payload
    /// of `gas serve|soak --metrics`.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Drains `workload` to completion and reports every request's fate.
    pub fn run(&mut self, workload: &Workload) -> Result<ServiceReport, String> {
        workload.validate()?;
        self.registry = Registry::new();
        self.ladder = DegradationLadder::new(self.cfg.degrade);
        if self.cfg.degrade {
            // The gauge is always present when the ladder is on, even
            // for a run that never leaves L0 — the CI non-vacuity gate.
            self.registry.set_gauge("gas_degradation_level", &[], 0.0);
        }
        // Resolve the coalescing window: explicit, off, or the cost
        // model's pick for this exact pool (negative = auto).
        self.window_ms = if self.cfg.batch_window_ms < 0.0 {
            let specs: Vec<gpu_sim::DeviceSpec> =
                self.pool.devices.iter().map(|d| d.spec().clone()).collect();
            self.cfg
                .cost
                .auto_batch_window_ms(&specs, self.sorter.config())
        } else {
            self.cfg.batch_window_ms
        };
        // A fresh cache per run keeps repeated `run` calls independent —
        // the same replay contract every other piece of state follows.
        self.cache = if self.cfg.cache_entries > 0 {
            Some(ResultCache::new(self.cfg.cache_entries, self.cfg.seed))
        } else {
            None
        };
        let mut arrivals: VecDeque<SortRequest> = workload.requests.iter().cloned().collect();
        let mut queue: Vec<Pending> = Vec::new();
        let mut records: Vec<RequestRecord> = Vec::new();
        let mut now = 0.0f64;

        loop {
            while arrivals.front().is_some_and(|r| r.arrival_ms <= now + EPS) {
                let req = arrivals.pop_front().expect("front checked");
                self.update_ladder(now, queue.len());
                self.admit(req, now, &mut queue, &mut records);
            }
            self.update_ladder(now, queue.len());

            if let Some((qi, di)) = self.pick(&queue, now) {
                let p = queue.remove(qi);
                if self.window_ms > 0.0 {
                    let members = self.assemble_group(&p, di, now, &mut queue);
                    if !members.is_empty() {
                        self.execute_group(p, members, di, now, &mut queue, &mut records);
                        continue;
                    }
                }
                self.execute(p, di, now, &mut queue, &mut records);
                continue;
            }

            // Nothing dispatchable at `now`: advance to the next event.
            let mut next = f64::INFINITY;
            if let Some(r) = arrivals.front() {
                next = next.min(r.arrival_ms);
            }
            for p in &queue {
                if p.not_before_ms > now + EPS {
                    next = next.min(p.not_before_ms);
                }
            }
            for d in &self.pool.devices {
                if d.breaker.is_blacklisted() {
                    continue;
                }
                if d.busy_until_ms > now + EPS {
                    next = next.min(d.busy_until_ms);
                }
                if let Some(u) = d.breaker.open_until() {
                    if u > now + EPS {
                        next = next.min(u);
                    }
                }
            }
            if next.is_finite() {
                now = next;
                continue;
            }

            if queue.is_empty() && arrivals.is_empty() {
                break;
            }
            // No event will ever fire again: every queued request fits
            // only blacklisted devices. Degrade or shed each, explicitly.
            for p in std::mem::take(&mut queue) {
                let host_ms = self.cfg.cost.host_ms(p.req.num_arrays, p.req.array_len);
                if now + host_ms <= p.req.deadline_ms + EPS {
                    self.resolve_host(
                        p,
                        now,
                        "no healthy device available; degraded to host".into(),
                        &mut records,
                    );
                } else {
                    records.push(Self::dropped(
                        p.req,
                        p.attempts,
                        Outcome::Shed {
                            reason: "no healthy device available and host cannot meet deadline"
                                .into(),
                        },
                    ));
                }
            }
        }

        records.sort_by_key(|r| r.id);
        Ok(self.build_report(workload, records))
    }

    /// Admission control: generate the batch, refuse what cannot be
    /// served, shed the lowest priority under overload.
    fn admit(
        &mut self,
        req: SortRequest,
        now: f64,
        queue: &mut Vec<Pending>,
        records: &mut Vec<RequestRecord>,
    ) {
        // L3+: the ladder sheds low-priority work at the door, before
        // any batch generation is spent on it.
        if self.ladder.enabled() && self.ladder.level() >= 3 && req.priority == Priority::Low {
            let level = self.ladder.level();
            records.push(Self::dropped(
                req,
                Vec::new(),
                Outcome::Shed {
                    reason: format!("degradation L{level}: low-priority shed at admission"),
                },
            ));
            return;
        }
        let batch = datagen::ArrayBatch::generate(
            req.data_seed,
            req.num_arrays,
            req.array_len,
            datagen::Distribution::PaperUniform,
            datagen::Arrangement::Shuffled,
        );
        let data = batch.as_flat().to_vec();
        let mut oracle = data.clone();
        cpu_ref::sort_arrays_seq(&mut oracle, req.array_len);

        // Content-hash cache: a payload already served (same bytes,
        // algorithm and splitter policy) completes immediately, billing
        // zero device time. Checked before any pool consultation — a
        // cache hit is valid at every degradation level.
        let mut cache_key = None;
        if let Some(cache) = self.cache.as_mut() {
            let key = cache.key_for(
                req.num_arrays,
                req.array_len,
                req.algorithm,
                req.splitters,
                &data,
            );
            if let Some(sorted) = cache.lookup(&key) {
                let verified = bits_equal(sorted, &oracle);
                records.push(RequestRecord {
                    id: req.id,
                    priority: req.priority,
                    algorithm: req.algorithm,
                    num_arrays: req.num_arrays,
                    array_len: req.array_len,
                    arrival_ms: req.arrival_ms,
                    deadline_ms: req.deadline_ms,
                    attempts: Vec::new(),
                    outcome: Outcome::CacheHit,
                    completion_ms: Some(now),
                    deadline_met: Some(now <= req.deadline_ms + EPS),
                    verified: Some(verified),
                });
                return;
            }
            cache_key = Some(key);
        }

        // L4: host-only serving — the pool is gone; don't even consult
        // it.
        if self.ladder.enabled() && self.ladder.level() >= 4 {
            let host_ms = self.cfg.cost.host_ms(req.num_arrays, req.array_len);
            if now + host_ms <= req.deadline_ms + EPS {
                let pending = Pending {
                    req,
                    data,
                    oracle,
                    est_ms: host_ms,
                    attempts_made: 0,
                    attempts: Vec::new(),
                    not_before_ms: now,
                    last_device: None,
                    cache_key,
                };
                self.resolve_host(
                    pending,
                    now,
                    "degradation L4: host-only serving".into(),
                    records,
                );
            } else {
                records.push(Self::dropped(
                    req,
                    Vec::new(),
                    Outcome::Shed {
                        reason: "degradation L4: host-only and host cannot meet deadline".into(),
                    },
                ));
            }
            return;
        }

        let fits_somewhere = self
            .pool
            .devices
            .iter()
            .any(|d| !d.breaker.is_blacklisted() && self.fits(d.spec(), &req));
        let host_ms = self.cfg.cost.host_ms(req.num_arrays, req.array_len);
        if !fits_somewhere {
            let pending = Pending {
                req,
                data,
                oracle,
                est_ms: host_ms,
                attempts_made: 0,
                attempts: Vec::new(),
                not_before_ms: now,
                last_device: None,
                cache_key,
            };
            if now + host_ms <= pending.req.deadline_ms + EPS {
                self.resolve_host(
                    pending,
                    now,
                    "batch fits no healthy pool device; served on host".into(),
                    records,
                );
            } else {
                records.push(Self::dropped(
                    pending.req,
                    Vec::new(),
                    Outcome::Rejected {
                        reason: "batch fits no healthy pool device and host cannot meet deadline"
                            .into(),
                    },
                ));
            }
            return;
        }

        // Projected completion: current backlog spread over healthy
        // devices, then this request's own best-device estimate.
        let est = self
            .pool
            .devices
            .iter()
            .filter(|d| !d.breaker.is_blacklisted() && self.fits(d.spec(), &req))
            .map(|d| self.projected_ms(d.spec(), &req))
            .fold(f64::INFINITY, f64::min);
        let healthy = self.pool.healthy_count().max(1) as f64;
        let backlog: f64 = queue.iter().map(|p| p.est_ms).sum::<f64>()
            + self
                .pool
                .devices
                .iter()
                .filter(|d| !d.breaker.is_blacklisted())
                .map(|d| (d.busy_until_ms - now).max(0.0))
                .sum::<f64>();
        let projected = now + backlog / healthy + est;
        if projected > req.deadline_ms + EPS {
            records.push(Self::dropped(
                req,
                Vec::new(),
                Outcome::Rejected {
                    reason: format!(
                        "projected completion {projected:.3} ms exceeds deadline {:.3} ms \
                         (queue backlog {backlog:.3} ms over {healthy} healthy devices)",
                        req.deadline_ms
                    ),
                },
            ));
            return;
        }

        // With coalescing on, a fresh admission is held in the window —
        // but never past the last instant its deadline stays feasible —
        // so compatible peers arriving shortly after can merge into one
        // launch.
        let not_before_ms = if self.window_ms > 0.0 {
            coalesce::hold_until(now, self.window_ms, req.deadline_ms, est)
        } else {
            now
        };
        queue.push(Pending {
            req,
            data,
            oracle,
            est_ms: est,
            attempts_made: 0,
            attempts: Vec::new(),
            not_before_ms,
            last_device: None,
            cache_key,
        });

        // Overload: shed lowest priority first (ties: latest deadline,
        // then newest). A victim whose deadline the host can still meet
        // degrades to cpu_ref instead of being dropped.
        while queue.len() > self.cfg.max_queue_depth.max(1) {
            let vi = (0..queue.len())
                .min_by(|&a, &b| {
                    let (pa, pb) = (&queue[a], &queue[b]);
                    pa.req
                        .priority
                        .cmp(&pb.req.priority)
                        .then(pb.req.deadline_ms.total_cmp(&pa.req.deadline_ms))
                        .then(pb.req.id.cmp(&pa.req.id))
                })
                .expect("queue is non-empty");
            let victim = queue.remove(vi);
            let depth = self.cfg.max_queue_depth;
            let victim_host_ms = self
                .cfg
                .cost
                .host_ms(victim.req.num_arrays, victim.req.array_len);
            if now + victim_host_ms <= victim.req.deadline_ms + EPS {
                self.resolve_host(
                    victim,
                    now,
                    format!("shed at queue depth {depth}; host can still meet deadline"),
                    records,
                );
            } else {
                records.push(Self::dropped(
                    victim.req,
                    victim.attempts,
                    Outcome::Shed {
                        reason: format!(
                            "queue overflow at depth {depth}: lowest-priority request shed"
                        ),
                    },
                ));
            }
        }
    }

    /// Picks the next (request, device) pair dispatchable at `now`:
    /// requests in priority-then-EDF order, each offered the healthy
    /// idle device with the lowest estimate (exact ties broken by the
    /// seeded RNG, preferring a device other than the last one tried).
    fn pick(&mut self, queue: &[Pending], now: f64) -> Option<(usize, usize)> {
        let mut order: Vec<usize> = (0..queue.len())
            .filter(|&i| queue[i].not_before_ms <= now + EPS)
            .collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&queue[a], &queue[b]);
            pb.req
                .priority
                .cmp(&pa.req.priority)
                .then(pa.req.deadline_ms.total_cmp(&pb.req.deadline_ms))
                .then(pa.req.id.cmp(&pb.req.id))
        });
        for qi in order {
            if let Some(di) = self.pick_device(&queue[qi], now) {
                return Some((qi, di));
            }
        }
        None
    }

    fn pick_device(&mut self, p: &Pending, now: f64) -> Option<usize> {
        let mut best: Vec<usize> = Vec::new();
        let mut best_est = f64::INFINITY;
        for d in &self.pool.devices {
            if d.busy_until_ms > now + EPS
                || !d.breaker.accepts(now)
                || !self.fits(d.spec(), &p.req)
            {
                continue;
            }
            let est = self.projected_ms(d.spec(), &p.req);
            if est < best_est {
                best_est = est;
                best = vec![d.index];
            } else if est == best_est {
                best.push(d.index);
            }
        }
        // Re-dispatch preference: not the device that just failed us.
        if best.len() > 1 {
            if let Some(last) = p.last_device {
                best.retain(|&i| i != last);
            }
        }
        match best.len() {
            0 => None,
            1 => Some(best[0]),
            n => Some(best[self.rng.gen_range(0..n)]),
        }
    }

    /// Does the batch fit the device under the request's algorithm?
    fn fits(&self, spec: &gpu_sim::DeviceSpec, req: &SortRequest) -> bool {
        match req.algorithm {
            // Fused/warp capacity is bounded by the three-kernel plan
            // (their fallback), so one check covers every GAS variant.
            Algorithm::Gas | Algorithm::GasFused | Algorithm::GasWarp => {
                self.sorter.max_arrays(spec, req.array_len) >= req.num_arrays as u64
            }
            Algorithm::Sta => {
                thrust_sim::sta::max_arrays(spec, req.array_len as u64) >= req.num_arrays as u64
            }
        }
    }

    /// Cost-model service projection for one request on one device. GAS
    /// requests are priced at the cheaper of the two pipeline variants —
    /// the same choice [`SortService::execute`] dispatches — under the
    /// request's splitter policy (deterministic selection costs more up
    /// front, and the model says so).
    fn projected_ms(&self, spec: &gpu_sim::DeviceSpec, req: &SortRequest) -> f64 {
        let cfg = if req.splitters == SplitterPolicy::Deterministic {
            self.det_sorter.config()
        } else {
            self.sorter.config()
        };
        match req.algorithm {
            Algorithm::Gas => {
                self.cfg
                    .cost
                    .best_gas_variant(spec, cfg, req.num_arrays, req.array_len)
                    .1
            }
            Algorithm::GasFused => {
                self.cfg
                    .cost
                    .device_ms_fused(spec, cfg, req.num_arrays, req.array_len)
            }
            Algorithm::GasWarp => {
                self.cfg
                    .cost
                    .device_ms_warp(spec, cfg, req.num_arrays, req.array_len)
            }
            Algorithm::Sta => self
                .cfg
                .cost
                .device_ms(spec, cfg, req.num_arrays, req.array_len),
        }
    }

    /// The attempt watchdog's budget for one (device, request) pairing:
    /// `device_ms_worst × timeout_slack`, or `None` when the watchdog is
    /// off. The worst-case bound already absorbs bounded re-splits and
    /// pipeline fallbacks, so only genuinely pathological attempts (a
    /// stall storm) blow it.
    fn watchdog_budget_ms(&self, di: usize, req: &SortRequest) -> Option<f64> {
        if self.cfg.timeout_slack <= 0.0 {
            return None;
        }
        let cfg = if req.splitters == SplitterPolicy::Deterministic {
            self.det_sorter.config()
        } else {
            self.sorter.config()
        };
        Some(
            self.cfg.cost.device_ms_worst(
                self.pool.devices[di].spec(),
                cfg,
                req.num_arrays,
                req.array_len,
            ) * self.cfg.timeout_slack,
        )
    }

    /// Picks a second idle device for a hedge attempt: the same policy as
    /// [`SortService::pick_device`] but never the primary. `None` means
    /// no hedge — the request proceeds unhedged rather than waiting.
    fn pick_hedge_device(&mut self, p: &Pending, primary: usize, now: f64) -> Option<usize> {
        let mut best: Vec<usize> = Vec::new();
        let mut best_est = f64::INFINITY;
        for d in &self.pool.devices {
            if d.index == primary
                || d.busy_until_ms > now + EPS
                || !d.breaker.accepts(now)
                || !self.fits(d.spec(), &p.req)
            {
                continue;
            }
            let est = self.projected_ms(d.spec(), &p.req);
            if est < best_est {
                best_est = est;
                best = vec![d.index];
            } else if est == best_est {
                best.push(d.index);
            }
        }
        match best.len() {
            0 => None,
            1 => Some(best[0]),
            n => Some(best[self.rng.gen_range(0..n)]),
        }
    }

    /// Feeds the ladder the current pool and queue pressure. A
    /// transition moves the `gas_degradation_level` gauge, ticks the
    /// `gas_degradation_transitions_total{from,to}` counter and leaves a
    /// `sched/degrade/L<from>-L<to>` marker span on device 0's timeline.
    fn update_ladder(&mut self, now: f64, queue_len: usize) {
        if !self.ladder.enabled() {
            return;
        }
        let healthy = self.pool.healthy_count();
        let total = self.pool.devices.len();
        let depth = self.cfg.max_queue_depth.max(1);
        if let Some(t) = self.ladder.observe(now, healthy, total, queue_len, depth) {
            self.registry
                .set_gauge("gas_degradation_level", &[], f64::from(t.to));
            let from = t.from.to_string();
            let to = t.to.to_string();
            self.registry.inc(
                "gas_degradation_transitions_total",
                &[("from", &from), ("to", &to)],
            );
            let g = &mut self.pool.devices[0].gpu;
            let span = g.begin_span(&format!("sched/degrade/L{}-L{}", t.from, t.to));
            g.end_span(span);
        }
    }

    /// Runs one checkpointed sort attempt on device `di` — breaker
    /// dispatch accounting, variant selection, billing — and returns the
    /// raw outcome. Success/failure routing, the watchdog and the hedge
    /// race all happen in [`SortService::execute`].
    fn device_attempt(
        &mut self,
        req: &SortRequest,
        data: &mut Vec<f32>,
        checkpoint: &[f32],
        di: usize,
        now: f64,
        span_name: &str,
    ) -> AttemptRun {
        let array_len = req.array_len;
        let cost = &self.cfg.cost;
        // The request's splitter policy selects the sorter family; the
        // deterministic instances differ only in `splitter_policy`.
        let deterministic = req.splitters == SplitterPolicy::Deterministic;
        let sorter = if deterministic {
            &self.det_sorter
        } else {
            &self.sorter
        };
        let fused = if deterministic {
            &self.det_fused
        } else {
            &self.fused
        };
        let warp = if deterministic {
            &self.det_warp
        } else {
            &self.warp
        };
        // Bucket overflows observed by the attempt (GAS variants only):
        // stashed out of the checkpointed closure for the metric below.
        let overflows = Cell::new(0u64);
        // L2+: even forced-variant GAS requests run whatever pipeline the
        // cost model prices cheapest — quality traded for headroom.
        let force_cheapest = self.ladder.enabled() && self.ladder.level() >= 2;
        let dev = &mut self.pool.devices[di];
        // `Gas` requests run whichever pipeline variant the cost model
        // projected cheaper on this device; `GasFused`/`GasWarp` force
        // their pipeline (which still falls back internally when the
        // arrays exceed its shared-memory layout).
        let variant = match req.algorithm {
            Algorithm::Gas => {
                cost.best_gas_variant(dev.spec(), sorter.config(), req.num_arrays, array_len)
                    .0
            }
            Algorithm::GasFused | Algorithm::GasWarp if force_cheapest => {
                cost.best_gas_variant(dev.spec(), sorter.config(), req.num_arrays, array_len)
                    .0
            }
            Algorithm::GasFused => GasVariant::Fused,
            Algorithm::GasWarp => GasVariant::Warp,
            Algorithm::Sta => GasVariant::ThreeKernel,
        };
        // What the cost model said this exact (device, pipeline) pairing
        // would bill — compared post-hoc against the simulator's actual
        // bill in the `gas_model_accuracy_rel_err` metric family.
        let predicted_ms = match (req.algorithm, variant) {
            (Algorithm::Sta, _) | (_, GasVariant::ThreeKernel) => {
                cost.device_ms(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
            (_, GasVariant::Fused) => {
                cost.device_ms_fused(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
            (_, GasVariant::Warp) => {
                cost.device_ms_warp(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
        };
        let variant_label = match req.algorithm {
            Algorithm::Sta => "sta",
            _ => variant.label(),
        };
        dev.breaker.on_dispatch(now);
        let mark = dev.gpu.bill_mark();
        let result = match (req.algorithm, variant) {
            (Algorithm::Sta, _) => {
                checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
                    thrust_sim::sta::sort_arrays(g, d, array_len).map(|_| ())
                })
            }
            (_, GasVariant::Warp) => {
                checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
                    warp.sort(g, d, array_len)
                        .map(|s| overflows.set(s.overflow.overflowed_buckets))
                })
            }
            (_, GasVariant::Fused) => {
                checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
                    fused
                        .sort(g, d, array_len)
                        .map(|s| overflows.set(s.overflow.overflowed_buckets))
                })
            }
            (_, GasVariant::ThreeKernel) => {
                checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
                    sorter
                        .sort(g, d, array_len)
                        .map(|s| overflows.set(s.overflow.overflowed_buckets))
                })
            }
        };
        let end_ms = match &result {
            Ok(()) => now + dev.gpu.billed_since(mark),
            Err(failed) => now + failed.wasted_ms,
        };
        AttemptRun {
            result,
            end_ms,
            predicted_ms,
            variant_label,
            overflows: overflows.get(),
        }
    }

    /// Runs one scheduling round for a request: the primary device
    /// attempt, a speculative hedge when the deadline is tight, the
    /// watchdog check on each, the hedge race, and outcome routing.
    fn execute(
        &mut self,
        mut p: Pending,
        di: usize,
        now: f64,
        queue: &mut Vec<Pending>,
        records: &mut Vec<RequestRecord>,
    ) {
        let attempt_no = p.attempts_made + 1;
        let span_name = if attempt_no == 1 {
            format!("sched/req-{}/attempt-1", p.req.id)
        } else {
            format!("recovery/req-{}/attempt-{attempt_no}", p.req.id)
        };
        let checkpoint = p.data.clone();

        // Hedge decision: a High/Critical request whose deadline slack at
        // dispatch is under the threshold gets a duplicate attempt on a
        // second idle device — unless the ladder says hedging is the
        // headroom we give up first (L1+).
        let hedge_di = if self.cfg.hedge_slack_ms > 0.0
            && !(self.ladder.enabled() && self.ladder.level() >= 1)
            && p.req.priority >= Priority::High
        {
            let est = self.projected_ms(self.pool.devices[di].spec(), &p.req);
            if p.req.deadline_ms - (now + est) < self.cfg.hedge_slack_ms {
                self.pick_hedge_device(&p, di, now)
            } else {
                None
            }
        } else {
            None
        };

        // The primary runs on the request's buffer; the hedge on a clone
        // of the checkpoint, so whichever result is kept can be adopted
        // wholesale.
        let primary = self.device_attempt(&p.req, &mut p.data, &checkpoint, di, now, &span_name);
        let mut runs: Vec<(usize, bool, AttemptRun)> = vec![(di, false, primary)];
        let mut hdata = Vec::new();
        if let Some(hdi) = hedge_di {
            hdata = checkpoint.clone();
            let hspan = format!("sched/req-{}/hedge-{attempt_no}", p.req.id);
            let run = self.device_attempt(&p.req, &mut hdata, &checkpoint, hdi, now, &hspan);
            runs.push((hdi, true, run));
        }

        // Watchdog assessment: a successful attempt billed over budget is
        // cancelled at its checkpoint; its result is no longer viable.
        let mut evals: Vec<Assessed> = Vec::new();
        for (adi, hedge, run) in runs {
            let budget = self.watchdog_budget_ms(adi, &p.req);
            let a = match &run.result {
                Ok(()) => {
                    let billed = run.end_ms - now;
                    let cancelled = budget
                        .filter(|b| billed > b + EPS)
                        .map(|b| format!("watchdog: billed {billed:.3} ms over budget {b:.3} ms"));
                    let viable = cancelled.is_none();
                    Assessed {
                        di: adi,
                        hedge,
                        end_ms: run.end_ms,
                        error: None,
                        transient: false,
                        cancelled,
                        predicted_ms: run.predicted_ms,
                        variant: run.variant_label,
                        viable,
                        overflows: run.overflows,
                    }
                }
                Err(failed) => Assessed {
                    di: adi,
                    hedge,
                    end_ms: run.end_ms,
                    error: Some(failed.error.to_string()),
                    transient: failed.error.is_transient(),
                    cancelled: None,
                    predicted_ms: run.predicted_ms,
                    variant: run.variant_label,
                    viable: false,
                    overflows: run.overflows,
                },
            };
            evals.push(a);
        }

        // Device side effects, in dispatch order.
        for a in &evals {
            let dev = &mut self.pool.devices[a.di];
            dev.busy_until_ms = a.end_ms;
            if a.error.is_some() {
                if a.transient {
                    dev.failed_attempts += 1;
                    dev.breaker.on_transient_failure(a.end_ms);
                } else {
                    dev.fatal_failures += 1;
                    dev.breaker.on_fatal();
                }
            } else if a.cancelled.is_some() {
                // Watchdog cancel: the device did finish, but too slowly
                // to trust — treat it like a transient failure for health
                // purposes and leave a marker in its trace.
                dev.watchdog_cancels += 1;
                dev.breaker.on_transient_failure(a.end_ms);
                let g = &mut dev.gpu;
                let span = g.begin_span(&format!("recovery/req-{}/watchdog-cancel", p.req.id));
                g.end_span(span);
            } else {
                dev.breaker.on_success();
            }
        }

        // The hedge race: earliest viable completion wins; exact ties go
        // to the seeded RNG (drawn only on a genuine tie, so unhedged
        // runs consume no extra randomness). The loser is cancelled.
        let viable: Vec<usize> = evals
            .iter()
            .enumerate()
            .filter(|(_, a)| a.viable)
            .map(|(i, _)| i)
            .collect();
        let winner = match viable.len() {
            0 => None,
            1 => Some(viable[0]),
            _ => {
                let best = viable
                    .iter()
                    .map(|&i| evals[i].end_ms)
                    .fold(f64::INFINITY, f64::min);
                let tied: Vec<usize> = viable
                    .iter()
                    .copied()
                    .filter(|&i| evals[i].end_ms == best)
                    .collect();
                if tied.len() > 1 {
                    Some(tied[self.rng.gen_range(0..tied.len())])
                } else {
                    Some(tied[0])
                }
            }
        };
        if let Some(wi) = winner {
            let wdev = evals[wi].di;
            for (i, a) in evals.iter_mut().enumerate() {
                if i != wi && a.viable {
                    a.viable = false;
                    a.cancelled = Some(format!("hedge: lost to dev{wdev}"));
                }
            }
        }

        // Adopt the winning buffer (or roll everything back: a primary
        // the watchdog cancelled still holds its discarded result).
        match winner {
            Some(wi) if evals[wi].hedge => p.data = hdata,
            Some(_) => {}
            None => p.data.copy_from_slice(&checkpoint),
        }

        for a in &evals {
            p.attempts.push(AttemptRecord {
                device: a.di,
                start_ms: now,
                end_ms: a.end_ms,
                error: a.error.clone(),
                transient: a.transient,
                predicted_ms: a.predicted_ms,
                variant: a.variant.to_string(),
                hedge: a.hedge,
                cancelled: a.cancelled.clone(),
                coalesced: 0,
            });
        }
        p.attempts_made += evals.len() as u32;

        if let Some(wi) = winner {
            let a = &evals[wi];
            let (wdi, end) = (a.di, a.end_ms);
            self.pool.devices[wdi].completed += 1;
            if a.overflows > 0 {
                // Overflow is an observable event, never a silent slow
                // path: surface the per-policy count in telemetry.
                self.registry.add(
                    "gas_bucket_overflows_total",
                    &[("policy", p.req.splitters.label())],
                    a.overflows as f64,
                );
            }
            let verified = bits_equal(&p.data, &p.oracle);
            if verified {
                if let (Some(cache), Some(key)) = (self.cache.as_mut(), p.cache_key) {
                    cache.insert(key, p.data.clone());
                }
            }
            records.push(RequestRecord {
                id: p.req.id,
                priority: p.req.priority,
                algorithm: p.req.algorithm,
                num_arrays: p.req.num_arrays,
                array_len: p.req.array_len,
                arrival_ms: p.req.arrival_ms,
                deadline_ms: p.req.deadline_ms,
                attempts: p.attempts,
                outcome: Outcome::Completed { device: wdi },
                completion_ms: Some(end),
                deadline_met: Some(end <= p.req.deadline_ms + EPS),
                verified: Some(verified),
            });
        } else {
            let end = evals.iter().map(|a| a.end_ms).fold(now, f64::max);
            p.last_device = Some(di);
            if p.attempts_made >= self.cfg.max_attempts.max(1) {
                let reason = format!(
                    "{} device attempts failed; degraded to host",
                    p.attempts_made
                );
                self.resolve_host(p, end, reason, records);
            } else {
                let backoff = self.cfg.backoff_base_ms * f64::powi(2.0, p.attempts_made as i32 - 1);
                p.not_before_ms = end + backoff.max(EPS);
                queue.push(p);
            }
        }
    }

    /// Collects queued requests that can ride along with `leader` in one
    /// mega-batch launch on device `di`: same array length, algorithm
    /// and splitter policy ([`coalesce::compatible`]), not serving a
    /// retry backoff, and the merged batch must still fit the device.
    /// Taken members are removed from the queue and returned in
    /// scheduling order (priority, then EDF, then id) — the same order
    /// decides who boards first when capacity runs out.
    fn assemble_group(
        &mut self,
        leader: &Pending,
        di: usize,
        now: f64,
        queue: &mut Vec<Pending>,
    ) -> Vec<Pending> {
        let mut order: Vec<usize> = (0..queue.len())
            .filter(|&i| {
                let m = &queue[i];
                coalesce::compatible(&leader.req, &m.req)
                    && (m.attempts_made == 0 || m.not_before_ms <= now + EPS)
            })
            .collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&queue[a], &queue[b]);
            pb.req
                .priority
                .cmp(&pa.req.priority)
                .then(pa.req.deadline_ms.total_cmp(&pb.req.deadline_ms))
                .then(pa.req.id.cmp(&pb.req.id))
        });
        let spec = self.pool.devices[di].spec().clone();
        let mut total = leader.req.num_arrays;
        let mut picked = vec![false; queue.len()];
        for i in order {
            let widened = coalesce::merged_request(&leader.req, total + queue[i].req.num_arrays);
            if self.fits(&spec, &widened) {
                total += queue[i].req.num_arrays;
                picked[i] = true;
            }
        }
        let mut members = Vec::new();
        let mut rest = Vec::new();
        for (i, p) in queue.drain(..).enumerate() {
            if picked[i] {
                members.push(p);
            } else {
                rest.push(p);
            }
        }
        *queue = rest;
        members.sort_by(|a, b| {
            b.req
                .priority
                .cmp(&a.req.priority)
                .then(a.req.deadline_ms.total_cmp(&b.req.deadline_ms))
                .then(a.req.id.cmp(&b.req.id))
        });
        members
    }

    /// Runs one coalesced mega-batch launch: the leader's and members'
    /// payloads concatenated into a single batch, sorted by one device
    /// attempt (streamed when [`SchedulerConfig::overlap`] is on), then
    /// split back per request. Mega-batches never hedge — the launch is
    /// already the throughput play. On failure only the leader burns an
    /// attempt (one physical fault must stay one fault in the ledger);
    /// members go back in the queue untouched.
    fn execute_group(
        &mut self,
        mut leader: Pending,
        members: Vec<Pending>,
        di: usize,
        now: f64,
        queue: &mut Vec<Pending>,
        records: &mut Vec<RequestRecord>,
    ) {
        let group_size = 1 + members.len();
        let total_arrays =
            leader.req.num_arrays + members.iter().map(|m| m.req.num_arrays).sum::<usize>();
        let synth = coalesce::merged_request(&leader.req, total_arrays);
        let attempt_no = leader.attempts_made + 1;
        let span_name = if attempt_no == 1 {
            format!("sched/mega-{}/attempt-1", leader.req.id)
        } else {
            format!("recovery/mega-{}/attempt-{attempt_no}", leader.req.id)
        };
        // Segment sizes in arrays — leader first, then members in
        // scheduling order; the results are split back along the same
        // seams. Per-array independence makes the merged sort bitwise
        // equal to sorting each payload alone.
        let mut segments: Vec<usize> = Vec::with_capacity(group_size);
        segments.push(leader.req.num_arrays);
        let mut merged = leader.data.clone();
        for m in &members {
            segments.push(m.req.num_arrays);
            merged.extend_from_slice(&m.data);
        }
        let checkpoint = merged.clone();
        let run = if self.cfg.overlap && synth.algorithm != Algorithm::Sta {
            self.overlapped_attempt(
                &synth,
                &segments,
                &mut merged,
                &checkpoint,
                di,
                now,
                &span_name,
            )
        } else {
            self.device_attempt(&synth, &mut merged, &checkpoint, di, now, &span_name)
        };
        let end = run.end_ms;
        let budget = self.watchdog_budget_ms(di, &synth);
        let dev = &mut self.pool.devices[di];
        dev.busy_until_ms = end;
        match run.result {
            Ok(()) => {
                let billed = end - now;
                let cancelled = budget
                    .filter(|b| billed > b + EPS)
                    .map(|b| format!("watchdog: billed {billed:.3} ms over budget {b:.3} ms"));
                if let Some(reason) = cancelled {
                    dev.watchdog_cancels += 1;
                    dev.breaker.on_transient_failure(end);
                    let g = &mut dev.gpu;
                    let span =
                        g.begin_span(&format!("recovery/req-{}/watchdog-cancel", leader.req.id));
                    g.end_span(span);
                    leader.attempts.push(AttemptRecord {
                        device: di,
                        start_ms: now,
                        end_ms: end,
                        error: None,
                        transient: false,
                        predicted_ms: run.predicted_ms,
                        variant: run.variant_label.to_string(),
                        hedge: false,
                        cancelled: Some(reason),
                        coalesced: group_size,
                    });
                    self.group_requeue(leader, members, di, end, queue, records);
                    return;
                }
                dev.breaker.on_success();
                dev.completed += group_size as u32;
                if run.overflows > 0 {
                    self.registry.add(
                        "gas_bucket_overflows_total",
                        &[("policy", leader.req.splitters.label())],
                        run.overflows as f64,
                    );
                }
                // Split the merged result back along the segment seams
                // and resolve every rider. Only the leader's record
                // carries the launch's real prediction; members carry
                // `predicted_ms = 0` copies so the cost model is scored
                // once per physical launch.
                let mut offset = 0usize;
                for (gi, mut p) in std::iter::once(leader).chain(members).enumerate() {
                    let len = p.req.num_arrays * p.req.array_len;
                    p.data.copy_from_slice(&merged[offset..offset + len]);
                    offset += len;
                    let verified = bits_equal(&p.data, &p.oracle);
                    if verified {
                        if let (Some(cache), Some(key)) = (self.cache.as_mut(), p.cache_key) {
                            cache.insert(key, p.data.clone());
                        }
                    }
                    p.attempts.push(AttemptRecord {
                        device: di,
                        start_ms: now,
                        end_ms: end,
                        error: None,
                        transient: false,
                        predicted_ms: if gi == 0 { run.predicted_ms } else { 0.0 },
                        variant: run.variant_label.to_string(),
                        hedge: false,
                        cancelled: None,
                        coalesced: group_size,
                    });
                    records.push(RequestRecord {
                        id: p.req.id,
                        priority: p.req.priority,
                        algorithm: p.req.algorithm,
                        num_arrays: p.req.num_arrays,
                        array_len: p.req.array_len,
                        arrival_ms: p.req.arrival_ms,
                        deadline_ms: p.req.deadline_ms,
                        attempts: p.attempts,
                        outcome: Outcome::Completed { device: di },
                        completion_ms: Some(end),
                        deadline_met: Some(end <= p.req.deadline_ms + EPS),
                        verified: Some(verified),
                    });
                }
            }
            Err(failed) => {
                let transient = failed.error.is_transient();
                if transient {
                    dev.failed_attempts += 1;
                    dev.breaker.on_transient_failure(end);
                } else {
                    dev.fatal_failures += 1;
                    dev.breaker.on_fatal();
                }
                // One physical fault, one record: the leader alone
                // carries the failed attempt, reconciling 1:1 with the
                // injector log the invariants check.
                leader.attempts.push(AttemptRecord {
                    device: di,
                    start_ms: now,
                    end_ms: end,
                    error: Some(failed.error.to_string()),
                    transient,
                    predicted_ms: run.predicted_ms,
                    variant: run.variant_label.to_string(),
                    hedge: false,
                    cancelled: None,
                    coalesced: group_size,
                });
                self.group_requeue(leader, members, di, end, queue, records);
            }
        }
    }

    /// Routes a failed (or watchdog-cancelled) mega-batch: members go
    /// straight back to the queue with their payloads untouched, the
    /// leader burns the attempt and retries with backoff — or resolves
    /// on the host once its budget is gone.
    fn group_requeue(
        &mut self,
        mut leader: Pending,
        members: Vec<Pending>,
        di: usize,
        end: f64,
        queue: &mut Vec<Pending>,
        records: &mut Vec<RequestRecord>,
    ) {
        for m in members {
            queue.push(m);
        }
        leader.attempts_made += 1;
        leader.last_device = Some(di);
        if leader.attempts_made >= self.cfg.max_attempts.max(1) {
            let reason = format!(
                "{} device attempts failed; degraded to host",
                leader.attempts_made
            );
            self.resolve_host(leader, end, reason, records);
        } else {
            let backoff =
                self.cfg.backoff_base_ms * f64::powi(2.0, leader.attempts_made as i32 - 1);
            leader.not_before_ms = end + backoff.max(EPS);
            queue.push(leader);
        }
    }

    /// Runs one checkpointed mega-batch attempt through the per-device
    /// three-stream pipeline: member k+1's upload (H2D stream) proceeds
    /// under member k's kernel (compute stream) while member k−1's
    /// download drains (D2H stream), chained with events. The closure
    /// ends on the default stream, so the bill is taken at quiesce —
    /// the overlap win is real in the cost ledger, not an accounting
    /// artifact. Mirrors [`SortService::device_attempt`] for breaker,
    /// variant and prediction bookkeeping; never used for STA.
    #[allow(clippy::too_many_arguments)]
    fn overlapped_attempt(
        &mut self,
        req: &SortRequest,
        segments: &[usize],
        data: &mut Vec<f32>,
        checkpoint: &[f32],
        di: usize,
        now: f64,
        span_name: &str,
    ) -> AttemptRun {
        let array_len = req.array_len;
        let cost = &self.cfg.cost;
        let deterministic = req.splitters == SplitterPolicy::Deterministic;
        let sorter = if deterministic {
            &self.det_sorter
        } else {
            &self.sorter
        };
        let fused = if deterministic {
            &self.det_fused
        } else {
            &self.fused
        };
        let warp = if deterministic {
            &self.det_warp
        } else {
            &self.warp
        };
        let overflows = Cell::new(0u64);
        let force_cheapest = self.ladder.enabled() && self.ladder.level() >= 2;
        let [up, comp, down] = self.pool.devices[di].overlap_streams();
        let dev = &mut self.pool.devices[di];
        let variant = match req.algorithm {
            Algorithm::Gas => {
                cost.best_gas_variant(dev.spec(), sorter.config(), req.num_arrays, array_len)
                    .0
            }
            Algorithm::GasFused | Algorithm::GasWarp if force_cheapest => {
                cost.best_gas_variant(dev.spec(), sorter.config(), req.num_arrays, array_len)
                    .0
            }
            Algorithm::GasFused => GasVariant::Fused,
            Algorithm::GasWarp => GasVariant::Warp,
            Algorithm::Sta => GasVariant::ThreeKernel,
        };
        // The prediction is the *serial* estimate for the merged shape:
        // scoring the streamed bill against it makes the overlap win
        // show up as a negative relative error, honestly.
        let predicted_ms = match variant {
            GasVariant::ThreeKernel => {
                cost.device_ms(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
            GasVariant::Fused => {
                cost.device_ms_fused(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
            GasVariant::Warp => {
                cost.device_ms_warp(dev.spec(), sorter.config(), req.num_arrays, array_len)
            }
        };
        let variant_label = variant.label();
        dev.breaker.on_dispatch(now);
        let mark = dev.gpu.bill_mark();
        let result = checkpointed_attempt(&mut dev.gpu, data, checkpoint, span_name, |g, d| {
            let inner = (|| {
                let mut offset = 0usize;
                for &num in segments {
                    let len = num * array_len;
                    let chunk = &mut d[offset..offset + len];
                    offset += len;
                    // Upload on the H2D stream; the kernel waits on the
                    // upload's event, not on the whole device.
                    g.set_stream(Some(up));
                    let mut buf = g.alloc::<f32>(len)?;
                    g.htod_into(chunk, &mut buf)?;
                    let e_up = g.record_event(up);
                    g.stream_wait_event(comp, e_up);
                    g.set_stream(Some(comp));
                    let geom = sorter.geometry(num, array_len);
                    match variant {
                        GasVariant::ThreeKernel => {
                            let stats = sorter.sort_device(g, &buf, &geom)?;
                            overflows.set(overflows.get() + stats.overflow.overflowed_buckets);
                        }
                        GasVariant::Fused => {
                            let (_, ov) = fused.sort_device(g, &buf, &geom)?;
                            overflows.set(overflows.get() + ov.overflowed_buckets);
                        }
                        GasVariant::Warp => {
                            let (_, ov) = warp.sort_device(g, &buf, &geom)?;
                            overflows.set(overflows.get() + ov.overflowed_buckets);
                        }
                    }
                    let e_k = g.record_event(comp);
                    g.stream_wait_event(down, e_k);
                    g.set_stream(Some(down));
                    g.dtoh_into(&mut buf, chunk)?;
                }
                Ok(())
            })();
            // Back to the default stream on every exit path: this
            // quiesces the three pipeline streams, so the bill below is
            // the true end-to-end wall time of the overlapped launch.
            g.set_stream(None);
            inner
        });
        let end_ms = match &result {
            Ok(()) => now + dev.gpu.billed_since(mark),
            Err(failed) => now + failed.wasted_ms,
        };
        AttemptRun {
            result,
            end_ms,
            predicted_ms,
            variant_label,
            overflows: overflows.get(),
        }
    }

    /// Sorts the request on the host (`cpu_ref`), modelling its cost on
    /// the virtual clock, and records the fallback.
    fn resolve_host(
        &mut self,
        p: Pending,
        at_ms: f64,
        reason: String,
        records: &mut Vec<RequestRecord>,
    ) {
        let mut data = p.data;
        cpu_ref::sort_arrays_seq(&mut data, p.req.array_len);
        let verified = bits_equal(&data, &p.oracle);
        if verified {
            if let (Some(cache), Some(key)) = (self.cache.as_mut(), p.cache_key) {
                cache.insert(key, data.clone());
            }
        }
        let completion = at_ms + self.cfg.cost.host_ms(p.req.num_arrays, p.req.array_len);
        if let Some(di) = p.last_device {
            // Leave the degradation visible in the failing device's trace.
            let g = &mut self.pool.devices[di].gpu;
            let span = g.begin_span(&format!("recovery/req-{}/cpu-fallback", p.req.id));
            g.end_span(span);
        }
        records.push(RequestRecord {
            id: p.req.id,
            priority: p.req.priority,
            algorithm: p.req.algorithm,
            num_arrays: p.req.num_arrays,
            array_len: p.req.array_len,
            arrival_ms: p.req.arrival_ms,
            deadline_ms: p.req.deadline_ms,
            attempts: p.attempts,
            outcome: Outcome::CpuFallback { reason },
            completion_ms: Some(completion),
            deadline_met: Some(completion <= p.req.deadline_ms + EPS),
            verified: Some(verified),
        });
    }

    fn dropped(req: SortRequest, attempts: Vec<AttemptRecord>, outcome: Outcome) -> RequestRecord {
        RequestRecord {
            id: req.id,
            priority: req.priority,
            algorithm: req.algorithm,
            num_arrays: req.num_arrays,
            array_len: req.array_len,
            arrival_ms: req.arrival_ms,
            deadline_ms: req.deadline_ms,
            attempts,
            outcome,
            completion_ms: None,
            deadline_met: None,
            verified: None,
        }
    }

    fn build_report(&mut self, workload: &Workload, records: Vec<RequestRecord>) -> ServiceReport {
        let mut completed = 0;
        let mut cpu_fallbacks = 0;
        let mut shed = 0;
        let mut rejected = 0;
        let mut cache_hits = 0;
        let mut deadline_hits = 0;
        let mut deadline_misses = 0;
        let mut makespan: f64 = 0.0;
        for r in &records {
            match &r.outcome {
                Outcome::Completed { .. } => completed += 1,
                Outcome::CpuFallback { .. } => cpu_fallbacks += 1,
                Outcome::Shed { .. } => shed += 1,
                Outcome::Rejected { .. } => rejected += 1,
                Outcome::CacheHit => cache_hits += 1,
            }
            match r.deadline_met {
                Some(true) => deadline_hits += 1,
                Some(false) => deadline_misses += 1,
                None => {}
            }
            if let Some(c) = r.completion_ms {
                makespan = makespan.max(c);
            }
            record_request_metrics(&mut self.registry, r);
        }
        for d in &self.pool.devices {
            let device = format!("dev{}", d.index);
            let labels = [("device", device.as_str())];
            self.registry
                .set_gauge("gas_device_busy_ms", &labels, d.gpu.elapsed_ms());
            let utilization = if makespan > 0.0 {
                100.0 * d.gpu.elapsed_ms() / makespan
            } else {
                0.0
            };
            self.registry
                .set_gauge("gas_device_utilization_pct", &labels, utilization);
            self.registry.set_gauge(
                "gas_breaker_blacklisted",
                &labels,
                if d.breaker.is_blacklisted() { 1.0 } else { 0.0 },
            );
            self.registry.add(
                "gas_breaker_trips_total",
                &labels,
                f64::from(d.breaker.trips()),
            );
            self.registry.add(
                "gas_breaker_transitions_total",
                &labels,
                f64::from(d.breaker.transitions()),
            );
            for fault in d.gpu.injected_faults() {
                self.registry.inc(
                    "gas_device_injected_faults_total",
                    &[("device", &device), ("kind", &fault.kind.to_string())],
                );
            }
            if d.deaths() > 0 {
                self.registry
                    .add("gas_device_deaths_total", &labels, d.deaths() as f64);
            }
        }
        if self.ladder.enabled() {
            // Close the ladder's books: attribute the tail of the run to
            // its final level and publish the terminal gauges.
            self.ladder.touch(makespan);
            self.registry
                .set_gauge("gas_degradation_level", &[], f64::from(self.ladder.level()));
            self.registry.set_gauge(
                "gas_degradation_max_level",
                &[],
                f64::from(self.ladder.max_level()),
            );
        }
        let cache = match &self.cache {
            Some(c) => {
                let stats = c.stats();
                // The full family is present whenever the cache is on,
                // even at zero — deterministic snapshot shape, and the
                // CI non-vacuity gate has something to assert against.
                // (Hits arrive per-record via `record_request_metrics`.)
                self.registry
                    .add("gas_cache_misses_total", &[], stats.misses as f64);
                self.registry
                    .add("gas_cache_evictions_total", &[], stats.evictions as f64);
                CacheReport {
                    enabled: true,
                    capacity: c.capacity(),
                    lookups: stats.lookups,
                    hits: stats.hits,
                    misses: stats.misses,
                    insertions: stats.insertions,
                    evictions: stats.evictions,
                    entries: c.len(),
                }
            }
            None => CacheReport::default(),
        };
        let devices = self
            .pool
            .devices
            .iter()
            .map(|d| DeviceReport {
                index: d.index,
                name: d.spec().name.clone(),
                completed: d.completed,
                failed_attempts: d.failed_attempts,
                fatal_failures: d.fatal_failures,
                injected_faults: d.gpu.injected_faults().len(),
                error_faults: d.error_faults(),
                breaker_trips: d.breaker.trips(),
                blacklisted: d.breaker.is_blacklisted(),
                device_ms: d.gpu.elapsed_ms(),
                deaths: d.deaths(),
                watchdog_cancels: d.watchdog_cancels,
            })
            .collect();
        let mut report = ServiceReport {
            seed: self.cfg.seed,
            requests: workload.requests.len(),
            completed,
            cpu_fallbacks,
            shed,
            shed_by_priority: ServiceReport::shed_by_priority_from_records(&records),
            rejected,
            cache_hits,
            deadline_hits,
            deadline_misses,
            makespan_ms: makespan,
            slo: SloReport::from_registry(&self.registry),
            degradation: DegradationReport::default(),
            cache,
            devices,
            records,
        };
        let (won, lost, cancelled) = report.hedge_outcomes_from_records();
        report.degradation = DegradationReport {
            enabled: self.ladder.enabled(),
            final_level: self.ladder.level(),
            max_level: self.ladder.max_level(),
            transitions: self.ladder.transitions().to_vec(),
            time_at_level_ms: self.ladder.time_at_level_ms().to_vec(),
            hedges_won: won,
            hedges_lost: lost,
            hedges_cancelled: cancelled,
            watchdog_cancels: report.watchdog_cancels_by_device().iter().sum(),
            device_deaths: report.devices.iter().map(|d| d.deaths).sum(),
            degradation_sheds: report.degradation_sheds_from_records(),
        };
        report
    }
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parse_mix;
    use crate::request::{Priority, WorkloadConfig};

    fn small_workload(seed: u64, requests: usize) -> Workload {
        Workload::generate(&WorkloadConfig {
            seed,
            requests,
            arrays: (4, 16),
            array_len: (16, 48),
            ..WorkloadConfig::default()
        })
    }

    fn service(devices: usize, cfg: SchedulerConfig, faults: Option<&FaultPlan>) -> SortService {
        SortService::new(parse_mix("test", devices).unwrap(), cfg, faults).unwrap()
    }

    /// A burst of identical small GAS requests all arriving at t=0 with
    /// far-off deadlines — the canned high-QPS shape the streaming tier
    /// is built for.
    fn uniform_burst(n: u64, num_arrays: usize, array_len: usize) -> Workload {
        Workload {
            requests: (0..n)
                .map(|id| SortRequest {
                    id,
                    num_arrays,
                    array_len,
                    data_seed: 900 + id,
                    algorithm: Algorithm::Gas,
                    splitters: SplitterPolicy::default(),
                    priority: Priority::Normal,
                    arrival_ms: 0.0,
                    deadline_ms: 1e9,
                })
                .collect(),
        }
    }

    #[test]
    fn clean_run_completes_everything_verified() {
        let w = small_workload(1, 40);
        let mut s = service(2, SchedulerConfig::default(), None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.requests, 40);
        assert_eq!(
            report.completed + report.cpu_fallbacks + report.rejected,
            40
        );
        assert_eq!(report.shed, 0);
        assert!(report.completed > 0);
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        for d in &report.devices {
            assert_eq!(d.failed_attempts, 0);
            assert_eq!(d.error_faults, 0);
            assert!(!d.blacklisted);
        }
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let w = small_workload(2, 60);
        let plan = FaultPlan::seeded(5)
            .with_launch_failure(0.02)
            .with_transfer_abort(0.02);
        let cfg = SchedulerConfig {
            seed: 9,
            ..SchedulerConfig::default()
        };
        let a = service(3, cfg.clone(), Some(&plan)).run(&w).unwrap();
        let b = service(3, cfg, Some(&plan)).run(&w).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json(), "byte-identical reports");
    }

    #[test]
    fn faulty_run_reconciles_with_injector_logs() {
        let w = small_workload(3, 80);
        let plan = FaultPlan::seeded(11)
            .with_launch_failure(0.05)
            .with_transfer_abort(0.05)
            .with_transfer_corruption(0.05)
            .with_stream_stall(0.05, 0.2);
        let mut s = service(3, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let failures: u32 = report.devices.iter().map(|d| d.failed_attempts).sum();
        assert!(failures > 0, "the plan should have hurt something");
        // Retries actually moved between devices when possible.
        let redispatched = report
            .records
            .iter()
            .any(|r| r.attempts.len() > 1 && r.attempts[0].device != r.attempts[1].device);
        assert!(
            redispatched,
            "at least one retry went to a different device"
        );
    }

    #[test]
    fn breaker_trips_under_a_hot_fault_rate_and_work_degrades() {
        let w = small_workload(4, 50);
        let plan = FaultPlan::seeded(3).with_launch_failure(1.0);
        let cfg = SchedulerConfig {
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_ms: 5.0,
            },
            ..SchedulerConfig::default()
        };
        let mut s = service(2, cfg, Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(report.completed, 0, "no device attempt can succeed");
        assert!(report.devices.iter().any(|d| d.breaker_trips > 0));
        assert!(report.cpu_fallbacks > 0, "work degraded to host");
    }

    #[test]
    fn overload_sheds_lowest_priority_first_and_never_silently() {
        // A burst of identical requests at t=0 against a queue of 1:
        // almost everything must be shed, host-served or rejected — and
        // every single request must leave an explicit record.
        let mut w = Workload::generate(&WorkloadConfig {
            seed: 5,
            requests: 30,
            arrays: (64, 64),
            array_len: (96, 96),
            mean_gap_ms: 0.0,
            ..WorkloadConfig::default()
        });
        for r in &mut w.requests {
            r.deadline_ms = 0.25;
        }
        let cfg = SchedulerConfig {
            max_queue_depth: 1,
            ..SchedulerConfig::default()
        };
        let mut s = service(1, cfg, None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(report.records.len(), 30, "no silent drops");
        assert!(
            report.completed < 30,
            "one device and one queue slot cannot absorb the burst"
        );
        assert!(report.shed + report.rejected + report.cpu_fallbacks > 0);
        // Shedding order: a critical request is only ever shed once no
        // lower-priority request survives to be served instead.
        let crit_shed = report
            .records
            .iter()
            .filter(|r| {
                r.priority == Priority::Critical && matches!(r.outcome, Outcome::Shed { .. })
            })
            .count();
        let lows_not_shed = report
            .records
            .iter()
            .filter(|r| r.priority == Priority::Low && !matches!(r.outcome, Outcome::Shed { .. }))
            .filter(|r| matches!(r.outcome, Outcome::Completed { .. }))
            .count();
        if crit_shed > 0 {
            assert_eq!(
                lows_not_shed, 0,
                "no low-priority request completes on-device while criticals are shed"
            );
        }
    }

    #[test]
    fn oversized_batches_are_rejected_or_host_served_with_reason() {
        let w = Workload {
            requests: vec![SortRequest {
                id: 0,
                num_arrays: 10_000_000,
                array_len: 4096,
                data_seed: 1,
                algorithm: Algorithm::Gas,
                splitters: SplitterPolicy::default(),
                priority: Priority::Normal,
                arrival_ms: 0.0,
                deadline_ms: 0.5,
            }],
        };
        let mut s = service(1, SchedulerConfig::default(), None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.rejected, 1);
        match &report.records[0].outcome {
            Outcome::Rejected { reason } => {
                assert!(reason.contains("fits no healthy pool device"), "{reason}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn sta_requests_are_served_too() {
        let mut w = small_workload(6, 20);
        for r in &mut w.requests {
            r.algorithm = Algorithm::Sta;
        }
        let plan = FaultPlan::seeded(2).with_transfer_abort(0.05);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert!(report.completed > 0);
    }

    #[test]
    fn gas_fused_requests_are_served_too() {
        let mut w = small_workload(10, 20);
        for r in &mut w.requests {
            r.algorithm = Algorithm::GasFused;
        }
        let plan = FaultPlan::seeded(4).with_launch_failure(0.05);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert!(report.completed > 0);
        // The forced-fused requests actually ran the fused kernel.
        let fused_launches = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().kernels.iter())
            .filter(|k| k.name == "gas_fused")
            .count();
        assert!(fused_launches > 0, "forced gas-fused requests ran fused");
    }

    #[test]
    fn gas_warp_requests_are_served_too() {
        let mut w = small_workload(11, 20);
        for r in &mut w.requests {
            r.algorithm = Algorithm::GasWarp;
        }
        let plan = FaultPlan::seeded(6).with_launch_failure(0.05);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert!(report.completed > 0);
        // The forced-warp requests actually ran the warp kernel.
        let warp_launches = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().kernels.iter())
            .filter(|k| k.name == "gas_warp")
            .count();
        assert!(warp_launches > 0, "forced gas-warp requests ran gas_warp");
    }

    #[test]
    fn deterministic_policy_requests_are_served_by_the_det_kernels() {
        // Small arrays (p = 1–2 buckets) keep the cost model on the
        // three-kernel pipeline, so the deterministic Phase-1 kernel name
        // is visible in the timeline.
        let mut w = Workload::generate(&WorkloadConfig {
            seed: 12,
            requests: 20,
            arrays: (4, 8),
            array_len: (16, 24),
            sta_fraction: 0.0,
            ..WorkloadConfig::default()
        });
        for r in &mut w.requests {
            r.algorithm = Algorithm::Gas;
            r.splitters = array_sort::SplitterPolicy::Deterministic;
        }
        let mut s = service(2, SchedulerConfig::default(), None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert!(report.completed > 0);
        let det_launches = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().kernels.iter())
            .filter(|k| k.name == "gas_phase1_splitters_det")
            .count();
        assert!(
            det_launches > 0,
            "deterministic requests must run the deterministic Phase-1 kernel"
        );
    }

    #[test]
    fn deterministic_requests_replay_bit_identically() {
        let w = Workload::generate(&WorkloadConfig {
            seed: 13,
            requests: 40,
            arrays: (4, 16),
            array_len: (16, 48),
            deterministic_fraction: 0.5,
            ..WorkloadConfig::default()
        });
        let plan = FaultPlan::seeded(7).with_launch_failure(0.03);
        let cfg = SchedulerConfig {
            seed: 21,
            ..SchedulerConfig::default()
        };
        let a = service(2, cfg.clone(), Some(&plan)).run(&w).unwrap();
        let b = service(2, cfg, Some(&plan)).run(&w).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json(), "byte-identical reports");
        assert_eq!(a.invariant_violations(), Vec::<String>::new());
    }

    #[test]
    fn cost_model_dispatches_the_fused_variant_where_it_is_cheaper() {
        // Paper-shaped arrays (n = 2000): the cost model projects the
        // warp-multisplit pipeline cheapest, so plain `gas` requests must
        // be served by the `gas_warp` kernel — no variant requested.
        let w = Workload {
            requests: (0..4)
                .map(|id| SortRequest {
                    id,
                    num_arrays: 4,
                    array_len: 2000,
                    data_seed: 100 + id,
                    algorithm: Algorithm::Gas,
                    splitters: SplitterPolicy::default(),
                    priority: Priority::Normal,
                    arrival_ms: id as f64 * 0.1,
                    deadline_ms: 1e9,
                })
                .collect(),
        };
        let mut s = SortService::new(
            parse_mix("k40c", 1).unwrap(),
            SchedulerConfig::default(),
            None,
        )
        .unwrap();
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(report.completed, 4);
        let kernels: Vec<String> = s.pool().devices[0]
            .gpu
            .timeline()
            .kernels
            .iter()
            .map(|k| k.name.clone())
            .collect();
        assert!(
            kernels.iter().any(|n| n == "gas_warp"),
            "cost model should route n=2000 gas requests to the warp kernel: {kernels:?}"
        );
        assert!(
            !kernels.iter().any(|n| n.starts_with("gas_phase")),
            "no three-kernel launches expected for these shapes: {kernels:?}"
        );
    }

    #[test]
    fn metrics_reconcile_with_the_report() {
        let w = small_workload(3, 80);
        let plan = FaultPlan::seeded(11)
            .with_launch_failure(0.05)
            .with_transfer_abort(0.05)
            .with_stream_stall(0.05, 0.2);
        let mut s = service(3, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let reg = s.metrics();
        assert_eq!(
            reg.counter_sum("gas_requests_total", &[]) as usize,
            report.requests
        );
        assert_eq!(
            reg.counter_sum("gas_requests_total", &[("outcome", "completed")]) as usize,
            report.completed
        );
        assert_eq!(
            reg.counter_sum("gas_fallback_total", &[]) as usize,
            report.cpu_fallbacks
        );
        assert_eq!(reg.counter_sum("gas_shed_total", &[]) as usize, report.shed);
        assert_eq!(
            reg.counter_sum("gas_deadline_total", &[("result", "hit")]) as usize,
            report.deadline_hits
        );
        // Transient attempt metrics equal the injectors' error faults.
        let injected: usize = report.devices.iter().map(|d| d.error_faults).sum();
        assert_eq!(
            reg.counter_sum("gas_attempts_total", &[("result", "transient")]) as usize,
            injected
        );
        // Every successful device attempt contributed a model-accuracy
        // observation.
        let successes = report
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .filter(|a| a.error.is_none())
            .count();
        let acc = reg.histogram_sum("gas_model_accuracy_rel_err", &[]);
        assert_eq!(acc.count as usize, successes);
        assert!(acc.count > 0, "something completed on-device");
        // The SLO section is exactly what the records imply.
        assert_eq!(report.slo, report.slo_from_records());
        assert_eq!(report.slo.by_priority.len(), 4);
    }

    #[test]
    fn metrics_snapshots_are_byte_identical_across_runs() {
        let w = small_workload(2, 60);
        let plan = FaultPlan::seeded(5)
            .with_launch_failure(0.02)
            .with_transfer_abort(0.02);
        let cfg = SchedulerConfig {
            seed: 9,
            ..SchedulerConfig::default()
        };
        let mut a = service(3, cfg.clone(), Some(&plan));
        a.run(&w).unwrap();
        let mut b = service(3, cfg, Some(&plan));
        b.run(&w).unwrap();
        let (ja, jb) = (
            a.metrics_snapshot().to_json(),
            b.metrics_snapshot().to_json(),
        );
        assert_eq!(ja, jb, "metrics inherit the bit-reproducibility contract");
        assert!(!a.metrics().is_empty());
    }

    #[test]
    fn tampered_slo_or_shed_sections_are_caught() {
        let w = small_workload(1, 40);
        let mut s = service(2, SchedulerConfig::default(), None);
        let clean = s.run(&w).unwrap();
        assert_eq!(clean.invariant_violations(), Vec::<String>::new());

        let mut tampered = clean.clone();
        tampered.slo.by_priority[1].attainment_pct += 1.0;
        assert!(
            tampered
                .invariant_violations()
                .iter()
                .any(|v| v.contains("slo section")),
            "an edited SLO row must fail reconciliation"
        );

        let mut tampered = clean.clone();
        tampered.shed_by_priority[0].shed += 1;
        assert!(
            !tampered.invariant_violations().is_empty(),
            "an edited shed count must fail reconciliation"
        );
    }

    #[test]
    fn heterogeneous_pool_prefers_the_faster_device() {
        let w = small_workload(7, 30);
        let specs = parse_mix("k40c,test", 2).unwrap();
        let mut s = SortService::new(specs, SchedulerConfig::default(), None).unwrap();
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let k40 = &report.devices[0];
        let test = &report.devices[1];
        assert!(
            k40.completed >= test.completed,
            "the 15-SM K40c should serve at least as many requests ({} vs {})",
            k40.completed,
            test.completed
        );
    }

    #[test]
    fn watchdog_cancels_stall_storms_and_work_still_resolves() {
        use gpu_sim::FaultPlan;
        let w = small_workload(20, 30);
        // Every operation stalls for 50 virtual ms: each attempt succeeds
        // but bills catastrophically over the cost model's worst case.
        let plan = FaultPlan::seeded(8).with_stream_stall(1.0, 50.0);
        let cfg = SchedulerConfig {
            timeout_slack: 2.0,
            ..SchedulerConfig::default()
        };
        let mut s = service(2, cfg, Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let cancels: u32 = report.devices.iter().map(|d| d.watchdog_cancels).sum();
        assert!(cancels > 0, "a 100% stall storm must blow the budget");
        assert_eq!(report.degradation.watchdog_cancels, cancels as usize);
        // Cancelled attempts are successes whose result was discarded:
        // no error, a watchdog reason, and they never count as winners.
        let wd: Vec<&AttemptRecord> = report
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .filter(|a| {
                a.cancelled
                    .as_deref()
                    .is_some_and(|c| c.starts_with("watchdog"))
            })
            .collect();
        assert_eq!(wd.len(), cancels as usize);
        assert!(wd.iter().all(|a| a.error.is_none() && !a.is_winner()));
        assert_eq!(
            s.metrics().counter_sum("gas_watchdog_cancels_total", &[]) as usize,
            wd.len()
        );
        // Cancelled work was re-dispatched or degraded, never lost.
        assert_eq!(
            report.completed + report.cpu_fallbacks + report.shed + report.rejected,
            30
        );
        // The cancel left its marker in the device traces.
        let markers = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter())
            .filter(|sp| sp.name.contains("/watchdog-cancel"))
            .count();
        assert_eq!(markers, cancels as usize);
    }

    #[test]
    fn watchdog_leaves_clean_runs_alone() {
        let w = small_workload(1, 40);
        let cfg = SchedulerConfig {
            timeout_slack: 3.0,
            ..SchedulerConfig::default()
        };
        let mut s = service(2, cfg, None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(
            report
                .devices
                .iter()
                .map(|d| d.watchdog_cancels)
                .sum::<u32>(),
            0,
            "a clean attempt never exceeds worst-case × 3"
        );
        assert!(report.completed > 0);
    }

    #[test]
    fn hedging_tight_deadlines_races_and_replays_byte_identically() {
        let mut w = small_workload(9, 40);
        for r in &mut w.requests {
            r.priority = Priority::High;
        }
        // A huge slack threshold makes every High request hedge whenever
        // a second idle device exists.
        let cfg = SchedulerConfig {
            seed: 4,
            hedge_slack_ms: 1e6,
            ..SchedulerConfig::default()
        };
        let mut s = service(3, cfg.clone(), None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let (won, lost, cancelled) = report.hedge_outcomes_from_records();
        assert!(won + lost + cancelled > 0, "hedges must fire");
        assert_eq!(
            (
                report.degradation.hedges_won,
                report.degradation.hedges_lost,
                report.degradation.hedges_cancelled
            ),
            (won, lost, cancelled)
        );
        // Exactly one kept result per request, and every completed
        // request's output still matches the oracle regardless of which
        // side of the race won.
        for r in &report.records {
            assert!(
                r.attempts.iter().filter(|a| a.is_winner()).count() <= 1,
                "request {} kept more than one result",
                r.id
            );
        }
        // Identical devices race to an exact tie, so both outcomes occur
        // and every race's loser shows up as wasted device time.
        assert!(
            s.metrics().counter_sum("gas_hedge_wasted_ms_total", &[]) > 0.0,
            "a settled race has a loser, and its bill is accounted"
        );
        assert_eq!(
            s.metrics().counter_sum("gas_hedges_total", &[]) as usize,
            won + lost + cancelled
        );
        let hedge_spans = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter())
            .filter(|sp| sp.name.contains("/hedge-"))
            .count();
        assert!(hedge_spans > 0, "hedge attempts run in their own spans");
        // Racing on the seeded RNG keeps the replay contract intact.
        let mut s2 = service(3, cfg, None);
        let report2 = s2.run(&w).unwrap();
        assert_eq!(report.to_json(), report2.to_json(), "byte-identical");
        assert_eq!(
            s.metrics_snapshot().to_json(),
            s2.metrics_snapshot().to_json()
        );
    }

    #[test]
    fn device_death_permanently_blacklists_and_the_pool_survives() {
        use gpu_sim::{FaultKind, FaultOp, FaultPlan};
        let w = small_workload(5, 40);
        // Scripted faults ignore the per-device reseed: every device dies
        // at its own 5th kernel launch.
        let plan = FaultPlan::seeded(1).with_scripted(FaultOp::Launch, 4, FaultKind::DeviceDeath);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        for d in &report.devices {
            assert_eq!(d.deaths, 1, "device {} must die exactly once", d.index);
            assert!(d.blacklisted, "death blacklists device {} forever", d.index);
            assert_eq!(d.fatal_failures, 1, "the death is the only fatal");
        }
        assert_eq!(report.degradation.device_deaths, 2);
        // Exactly one attempt per device carries the permanent error; the
        // fail-fast rejections afterwards never masquerade as new faults.
        let death_attempts = report
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .filter(|a| {
                !a.transient
                    && a.error
                        .as_deref()
                        .is_some_and(|e| e.contains("device-death"))
            })
            .count();
        assert_eq!(death_attempts, 2);
        assert_eq!(
            s.metrics().counter_sum("gas_device_deaths_total", &[]) as usize,
            2
        );
        // The pool kept serving: every request has an explicit outcome and
        // post-death work degraded to the host.
        assert_eq!(
            report.completed + report.cpu_fallbacks + report.shed + report.rejected,
            40
        );
        assert!(report.completed > 0, "pre-death work completed on-device");
        assert!(report.cpu_fallbacks > 0, "post-death work went to the host");
    }

    #[test]
    fn degradation_ladder_engages_and_reports_non_vacuously() {
        use gpu_sim::{FaultKind, FaultOp, FaultPlan};
        let w = small_workload(6, 40);
        let plan = FaultPlan::seeded(2).with_scripted(FaultOp::Launch, 2, FaultKind::DeviceDeath);
        let cfg = SchedulerConfig {
            degrade: true,
            ..SchedulerConfig::default()
        };
        let mut s = service(2, cfg.clone(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let deg = &report.degradation;
        assert!(deg.enabled);
        assert!(
            !deg.transitions.is_empty(),
            "device loss must move the ladder"
        );
        assert_eq!(deg.max_level, 4, "both devices dead ends at host-only");
        assert_eq!(deg.final_level, 4, "dead devices never come back");
        assert!(deg.time_at_level_ms.iter().sum::<f64>() > 0.0);
        // L4 arrivals are host-served (or shed) by the ladder itself,
        // with the level in the reason.
        let l4_records = report
            .records
            .iter()
            .filter(|r| match &r.outcome {
                Outcome::CpuFallback { reason } | Outcome::Shed { reason } => {
                    reason.starts_with("degradation L4")
                }
                _ => false,
            })
            .count();
        assert!(l4_records > 0, "post-L4 arrivals go through the ladder");
        // Transitions are visible in telemetry and in the trace.
        assert!(
            s.metrics()
                .counter_sum("gas_degradation_transitions_total", &[])
                >= deg.transitions.len() as f64
        );
        assert!(s
            .metrics_snapshot()
            .to_json()
            .contains("gas_degradation_level"));
        let degrade_spans = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter())
            .filter(|sp| sp.name.starts_with("sched/degrade/"))
            .count();
        assert_eq!(degrade_spans, deg.transitions.len());
        // Ladder runs replay byte-identically too.
        let mut s2 = service(2, cfg, Some(&plan));
        let report2 = s2.run(&w).unwrap();
        assert_eq!(report.to_json(), report2.to_json());
    }

    #[test]
    fn sched_and_recovery_spans_reach_the_trace() {
        let w = small_workload(8, 10);
        let plan = FaultPlan::seeded(1).with_launch_failure(0.3);
        let mut s = service(2, SchedulerConfig::default(), Some(&plan));
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        let span_names: Vec<String> = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter().map(|sp| sp.name.clone()))
            .collect();
        assert!(
            span_names.iter().any(|n| n.starts_with("sched/req-")),
            "{span_names:?}"
        );
        if report.devices.iter().any(|d| d.failed_attempts > 0) {
            assert!(
                span_names.iter().any(|n| n.starts_with("recovery/req-")),
                "{span_names:?}"
            );
        }
    }

    #[test]
    fn coalescing_forms_mega_batches_and_strictly_cuts_makespan() {
        let w = uniform_burst(16, 4, 32);
        let seq = service(1, SchedulerConfig::default(), None)
            .run(&w)
            .unwrap();
        assert_eq!(seq.completed, 16);
        let cfg = SchedulerConfig {
            batch_window_ms: 0.1,
            ..SchedulerConfig::default()
        };
        let mut s = service(1, cfg, None);
        let coal = s.run(&w).unwrap();
        assert_eq!(coal.invariant_violations(), Vec::<String>::new());
        assert_eq!(coal.completed, 16);
        let max_group = coal
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .map(|a| a.coalesced)
            .max()
            .unwrap_or(0);
        assert!(max_group > 1, "the window must form a mega-batch");
        assert!(
            coal.makespan_ms < seq.makespan_ms,
            "coalescing must strictly cut the makespan: {} vs {} ms",
            coal.makespan_ms,
            seq.makespan_ms
        );
        // Per-array independence: every split-back result still matches
        // its own oracle bit for bit.
        assert!(coal.records.iter().all(|r| r.verified == Some(true)));
        // The mega-launch ran in its own span, and the cost model was
        // scored once per physical launch (leader only).
        let mega_spans = s
            .pool()
            .devices
            .iter()
            .flat_map(|d| d.gpu.timeline().spans.iter())
            .filter(|sp| sp.name.starts_with("sched/mega-"))
            .count();
        assert!(mega_spans > 0, "mega-batches run in sched/mega-* spans");
        let scored = coal
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .filter(|a| a.coalesced > 1 && a.predicted_ms > 0.0)
            .count();
        assert_eq!(scored, mega_spans, "one real prediction per launch");
    }

    #[test]
    fn cache_hits_bill_zero_device_time_and_reconcile() {
        // The same payload served three times: once on-device, then
        // twice straight from the cache.
        let w = Workload {
            requests: (0..3u64)
                .map(|id| SortRequest {
                    id,
                    num_arrays: 6,
                    array_len: 32,
                    data_seed: 42,
                    algorithm: Algorithm::Gas,
                    splitters: SplitterPolicy::default(),
                    priority: Priority::Normal,
                    arrival_ms: id as f64 * 5.0,
                    deadline_ms: 1e9,
                })
                .collect(),
        };
        let cfg = SchedulerConfig {
            cache_entries: 8,
            ..SchedulerConfig::default()
        };
        let mut s = service(1, cfg, None);
        let report = s.run(&w).unwrap();
        assert_eq!(report.invariant_violations(), Vec::<String>::new());
        assert_eq!(report.completed, 1);
        assert_eq!(report.cache_hits, 2);
        assert!(report.cache.enabled);
        assert_eq!(report.cache.lookups, 3);
        assert_eq!(report.cache.hits, 2);
        assert_eq!(report.cache.misses, 1);
        assert_eq!(report.cache.entries, 1);
        // A hit runs no device attempt and completes at admission: zero
        // device milliseconds billed.
        for r in &report.records {
            if matches!(r.outcome, Outcome::CacheHit) {
                assert!(r.attempts.is_empty());
                assert_eq!(r.completion_ms, Some(r.arrival_ms));
                assert_eq!(r.verified, Some(true));
            }
        }
        assert_eq!(
            s.metrics().counter_sum("gas_cache_hits_total", &[]) as usize,
            2
        );
        assert_eq!(
            s.metrics().counter_sum("gas_cache_misses_total", &[]) as usize,
            1
        );
        // Legacy runs stay cache-silent: no section, no metric family.
        let mut legacy = service(1, SchedulerConfig::default(), None);
        let lr = legacy.run(&w).unwrap();
        assert_eq!(lr.cache, CacheReport::default());
        assert!(!legacy
            .metrics_snapshot()
            .to_json()
            .contains("gas_cache_misses_total"));
    }

    #[test]
    fn overlapped_streaming_beats_sequential_dispatch_on_a_small_burst() {
        let w = uniform_burst(16, 4, 32);
        let seq = service(1, SchedulerConfig::default(), None)
            .run(&w)
            .unwrap();
        let cfg = SchedulerConfig {
            batch_window_ms: 0.1,
            overlap: true,
            ..SchedulerConfig::default()
        };
        let mut s = service(1, cfg.clone(), None);
        let streamed = s.run(&w).unwrap();
        assert_eq!(streamed.invariant_violations(), Vec::<String>::new());
        assert_eq!(streamed.completed, 16);
        assert!(
            streamed.makespan_ms < seq.makespan_ms,
            "streamed serving must strictly beat sequential dispatch: {} vs {} ms",
            streamed.makespan_ms,
            seq.makespan_ms
        );
        assert!(streamed.records.iter().all(|r| r.verified == Some(true)));
        // The pipeline really rode the per-device streams.
        let streamed_transfers = s.pool().devices[0]
            .gpu
            .timeline()
            .transfers
            .iter()
            .filter(|t| t.stream.is_some())
            .count();
        assert!(
            streamed_transfers > 0,
            "transfers must ride the H2D/D2H streams"
        );
        // Replay contract holds with overlap on.
        let mut s2 = service(1, cfg, None);
        let streamed2 = s2.run(&w).unwrap();
        assert_eq!(streamed.to_json(), streamed2.to_json());
        assert_eq!(
            s.metrics_snapshot().to_json(),
            s2.metrics_snapshot().to_json()
        );
    }

    #[test]
    fn streaming_stack_replays_byte_identically_under_chaos() {
        let w = Workload::generate(&WorkloadConfig {
            seed: 33,
            requests: 80,
            arrays: (4, 8),
            array_len: (32, 32),
            repeat_fraction: 0.5,
            ..WorkloadConfig::default()
        });
        let plan = FaultPlan::seeded(9)
            .with_launch_failure(0.03)
            .with_transfer_abort(0.03)
            .with_stream_stall(0.05, 0.2);
        let cfg = SchedulerConfig {
            seed: 17,
            batch_window_ms: -1.0, // auto: the cost model picks
            cache_entries: 16,
            overlap: true,
            ..SchedulerConfig::default()
        };
        let mut a = service(2, cfg.clone(), Some(&plan));
        let ra = a.run(&w).unwrap();
        assert_eq!(ra.invariant_violations(), Vec::<String>::new());
        let mut b = service(2, cfg, Some(&plan));
        let rb = b.run(&w).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(ra.to_json(), rb.to_json(), "byte-identical reports");
        assert_eq!(
            a.metrics_snapshot().to_json(),
            b.metrics_snapshot().to_json(),
            "byte-identical metrics"
        );
        assert!(ra.cache_hits > 0, "the repeat workload must hit the cache");
    }

    #[test]
    fn coalescing_off_is_byte_identical_to_the_legacy_path() {
        // The whole streaming tier defaults off: a default-config run of
        // a chaos workload must not change by a byte.
        let w = small_workload(3, 80);
        let plan = FaultPlan::seeded(11)
            .with_launch_failure(0.05)
            .with_transfer_abort(0.05)
            .with_stream_stall(0.05, 0.2);
        let cfg = SchedulerConfig::default();
        assert_eq!(cfg.batch_window_ms, 0.0);
        assert_eq!(cfg.cache_entries, 0);
        assert!(!cfg.overlap);
        let ra = service(3, cfg.clone(), Some(&plan)).run(&w).unwrap();
        let rb = service(3, cfg, Some(&plan)).run(&w).unwrap();
        assert_eq!(ra.to_json(), rb.to_json());
        assert_eq!(ra.cache_hits, 0);
        assert_eq!(ra.cache, CacheReport::default());
        assert!(ra
            .records
            .iter()
            .flat_map(|r| &r.attempts)
            .all(|a| a.coalesced == 0));
    }
}
