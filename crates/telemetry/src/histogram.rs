//! Exact-count log-bucketed histograms.
//!
//! Buckets cover each power-of-two octave `[2^e, 2^(e+1))` with four
//! linear sub-buckets, giving ≤ 25% relative bucket width everywhere.
//! The bucket index of a finite value is read straight out of its IEEE
//! bit pattern (exponent field plus the top two mantissa bits), and
//! bucket boundaries are constructed exactly from bit patterns too —
//! no `log2`/`powf` anywhere, so indices and boundaries are identical
//! on every platform and toolchain.
//!
//! Quantiles are rank-based over the exact counts and report the
//! **lower bound** of the covering bucket (sign-mirrored for negative
//! values). Observations that sit exactly on a bucket boundary — zero,
//! powers of two and their ¼-multiples such as `1.25`, `3.0`, `40.0` —
//! therefore come back exactly; anything else is understated by less
//! than the 25% bucket width.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Sub-buckets per octave (4 ⇒ index = 4·exponent + top-2 mantissa bits).
const SUBS: i32 = 4;
/// Smallest bucketed magnitude octave: anything below `2^-30` ms
/// (≈ 1 ps) clamps into the lowest bucket.
const MIN_EXP: i32 = -30;
/// Largest bucketed magnitude octave: anything at or above `2^41`
/// clamps into the highest bucket. Wide enough for any virtual-time
/// quantity this repo produces.
const MAX_EXP: i32 = 40;
const MIN_IDX: i32 = MIN_EXP * SUBS;
const MAX_IDX: i32 = MAX_EXP * SUBS + (SUBS - 1);

/// Exact `2^e` for `e` well inside the normal range.
fn pow2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// A signed-value histogram with exact per-bucket counts.
///
/// Negative observations land in a mirrored magnitude map, so signed
/// quantities like deadline slack keep their full distribution. `NaN`s
/// are counted apart and excluded from `count`, quantiles and `sum`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Histogram {
    /// Non-NaN observations.
    pub count: u64,
    /// Sum of non-NaN observations (deterministic: observation order is).
    pub sum: f64,
    /// Smallest observation; meaningful only when `count > 0`.
    pub min: f64,
    /// Largest observation; meaningful only when `count > 0`.
    pub max: f64,
    /// Observations exactly equal to zero.
    pub zero: u64,
    /// NaN observations, counted apart from everything else.
    pub nan: u64,
    /// Bucket index → count for negative observations, keyed by the
    /// bucket index of the magnitude.
    pub neg: BTreeMap<i32, u64>,
    /// Bucket index → count for positive observations.
    pub pos: BTreeMap<i32, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index covering a positive finite magnitude: the IEEE
    /// exponent times four plus the top two mantissa bits, clamped to
    /// the supported octave range (infinities clamp to the top bucket,
    /// subnormals to the bottom one).
    pub fn bucket_index(magnitude: f64) -> i32 {
        debug_assert!(magnitude > 0.0);
        let bits = magnitude.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        let sub = ((bits >> 50) & 0b11) as i32;
        (exp * SUBS + sub).clamp(MIN_IDX, MAX_IDX)
    }

    /// The exact lower bound of bucket `idx`: `2^e · (1 + sub/4)`.
    pub fn bucket_lower(idx: i32) -> f64 {
        let idx = idx.clamp(MIN_IDX, MAX_IDX);
        let (e, sub) = (idx.div_euclid(SUBS), idx.rem_euclid(SUBS));
        pow2(e) * (1.0 + sub as f64 * 0.25)
    }

    /// The exact upper bound of bucket `idx` (the next bucket's lower
    /// bound; `2^(e+1)` at the top of an octave).
    pub fn bucket_upper(idx: i32) -> f64 {
        let idx = idx.clamp(MIN_IDX, MAX_IDX);
        let (e, sub) = (idx.div_euclid(SUBS), idx.rem_euclid(SUBS));
        pow2(e) * (1.0 + (sub + 1) as f64 * 0.25)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            self.nan += 1;
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v == 0.0 {
            self.zero += 1;
        } else if v > 0.0 {
            *self.pos.entry(Self::bucket_index(v)).or_insert(0) += 1;
        } else {
            *self.neg.entry(Self::bucket_index(-v)).or_insert(0) += 1;
        }
    }

    /// Adds `other`'s counts into `self`. Associative with `new()` as
    /// the identity — the monoid the soak campaign's per-seed fold
    /// relies on.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zero += other.zero;
        self.nan += other.nan;
        for (&idx, &c) in &other.neg {
            *self.neg.entry(idx).or_insert(0) += c;
        }
        for (&idx, &c) in &other.pos {
            *self.pos.entry(idx).or_insert(0) += c;
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the signed lower bound of the
    /// bucket holding the rank-`⌈q·count⌉` observation in ascending
    /// order. Returns `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        // Ascending value order: most-negative magnitudes first.
        for (&idx, &c) in self.neg.iter().rev() {
            cum += c;
            if cum >= rank {
                return -Self::bucket_lower(idx);
            }
        }
        cum += self.zero;
        if cum >= rank {
            return 0.0;
        }
        for (&idx, &c) in &self.pos {
            cum += c;
            if cum >= rank {
                return Self::bucket_lower(idx);
            }
        }
        unreachable!("rank is clamped to the total count");
    }

    /// The `q`-quantile of the **magnitudes** `|v|` — what the
    /// cost-model accuracy gate bounds, since a projection can miss in
    /// either direction. Returns `0.0` for an empty histogram.
    pub fn quantile_abs(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.zero;
        if cum >= rank {
            return 0.0;
        }
        let mut neg = self.neg.iter().peekable();
        let mut pos = self.pos.iter().peekable();
        // Merge the two magnitude maps in ascending bucket order.
        loop {
            let (&idx, &c) = match (neg.peek(), pos.peek()) {
                (Some(&(&a, _)), Some(&(&b, _))) if a <= b => neg.next().unwrap(),
                (Some(_), Some(_)) | (None, Some(_)) => pos.next().unwrap(),
                (Some(_), None) => neg.next().unwrap(),
                (None, None) => unreachable!("rank is clamped to the total count"),
            };
            cum += c;
            if cum >= rank {
                return Self::bucket_lower(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_exact_bit_patterns() {
        // Octave starts.
        assert_eq!(Histogram::bucket_lower(0), 1.0);
        assert_eq!(Histogram::bucket_lower(4), 2.0);
        assert_eq!(Histogram::bucket_lower(-4), 0.5);
        // Quarter sub-buckets within the [1, 2) octave.
        assert_eq!(Histogram::bucket_lower(1), 1.25);
        assert_eq!(Histogram::bucket_lower(2), 1.5);
        assert_eq!(Histogram::bucket_lower(3), 1.75);
        assert_eq!(Histogram::bucket_upper(3), 2.0);
        // Upper bound of one bucket is the lower bound of the next.
        for idx in [-121, -5, -1, 0, 7, 99] {
            assert_eq!(
                Histogram::bucket_upper(idx),
                Histogram::bucket_lower(idx + 1),
                "bucket {idx} upper != bucket {} lower",
                idx + 1
            );
        }
    }

    #[test]
    fn bucket_index_matches_the_boundaries() {
        for idx in MIN_IDX..=MAX_IDX {
            let lo = Histogram::bucket_lower(idx);
            assert_eq!(Histogram::bucket_index(lo), idx, "lower bound of {idx}");
            // Just below the upper bound still lands in this bucket.
            let hi = Histogram::bucket_upper(idx);
            let inside = f64::from_bits(hi.to_bits() - 1);
            if inside > lo {
                assert_eq!(Histogram::bucket_index(inside), idx, "inside {idx}");
            }
        }
        // Out-of-range magnitudes clamp instead of panicking.
        assert_eq!(Histogram::bucket_index(f64::MIN_POSITIVE), MIN_IDX);
        assert_eq!(Histogram::bucket_index(1e300), MAX_IDX);
        assert_eq!(Histogram::bucket_index(f64::INFINITY), MAX_IDX);
    }

    #[test]
    fn exact_percentiles_on_boundary_valued_data() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.75), 4.0);
        assert_eq!(h.quantile(0.99), 8.0);
        assert_eq!(h.quantile(1.0), 8.0);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 15.0);
        assert_eq!((h.min, h.max), (1.0, 8.0));
    }

    #[test]
    fn signed_data_walks_negatives_zero_then_positives() {
        let mut h = Histogram::new();
        for v in [-4.0, -1.0, 0.0, 2.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.2), -4.0);
        assert_eq!(h.quantile(0.4), -1.0);
        assert_eq!(h.quantile(0.6), 0.0);
        assert_eq!(h.quantile(0.8), 2.0);
        assert_eq!(h.quantile(1.0), 8.0);
        // Magnitude quantiles interleave the two sides.
        assert_eq!(h.quantile_abs(0.2), 0.0);
        assert_eq!(h.quantile_abs(0.4), 1.0);
        assert_eq!(h.quantile_abs(0.6), 2.0);
        assert_eq!(h.quantile_abs(0.8), 4.0);
        assert_eq!(h.quantile_abs(1.0), 8.0);
    }

    #[test]
    fn nan_is_counted_apart() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(3.0);
        assert_eq!((h.count, h.nan), (1, 1));
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.sum, 3.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile_abs(0.99), 0.0);
    }

    proptest! {
        /// Merge is a monoid: merging two halves equals observing the
        /// concatenation, and the empty histogram is the identity.
        #[test]
        fn merge_monoid_law(
            a in proptest::collection::vec(-1e6f64..1e6, 0..200),
            b in proptest::collection::vec(-1e6f64..1e6, 0..200),
        ) {
            let mut whole = Histogram::new();
            for &v in a.iter().chain(&b) {
                whole.observe(v);
            }
            let mut left = Histogram::new();
            for &v in &a {
                left.observe(v);
            }
            let mut right = Histogram::new();
            for &v in &b {
                right.observe(v);
            }
            let mut merged = left.clone();
            merged.merge(&right);
            // Bucket contents, counts and extremes agree exactly; the sum
            // may differ in the last ulp (f64 addition is not associative)
            // but both folds are themselves deterministic.
            prop_assert_eq!(&merged.pos, &whole.pos);
            prop_assert_eq!(&merged.neg, &whole.neg);
            prop_assert_eq!(merged.count, whole.count);
            prop_assert_eq!(merged.zero, whole.zero);
            if whole.count > 0 {
                prop_assert_eq!(merged.min, whole.min);
                prop_assert_eq!(merged.max, whole.max);
            }
            for q in [0.5, 0.9, 0.99, 0.999] {
                prop_assert_eq!(merged.quantile(q), whole.quantile(q));
            }
            let mut with_identity = Histogram::new();
            with_identity.merge(&left);
            prop_assert_eq!(with_identity, left);
        }

        /// Quantiles are monotone in q and bounded by the bucket floors
        /// of min/max.
        #[test]
        fn quantiles_are_monotone(vs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut h = Histogram::new();
            for &v in &vs {
                h.observe(v);
            }
            let mut last = f64::NEG_INFINITY;
            for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let x = h.quantile(q);
                prop_assert!(x >= last, "quantile({q}) = {x} < {last}");
                last = x;
            }
            // The representative is the bucket bound nearer zero, so the
            // top quantile never overstates the true maximum's magnitude.
            let top = h.quantile(1.0);
            if h.max > 0.0 {
                prop_assert!(top <= h.max, "{top} overstates max {}", h.max);
            } else if h.max < 0.0 {
                prop_assert!(top >= h.max && top < 0.0, "{top} vs max {}", h.max);
            }
            prop_assert!(h.quantile_abs(1.0) <= h.min.abs().max(h.max.abs()));
        }
    }
}
