//! Deterministic metrics for the service tier.
//!
//! Everything in this repo is bit-reproducible — the simulator clock,
//! the scheduler, the workload generator — and the metrics layer keeps
//! that contract. There is no sampling, no wall clock and no hash-map
//! iteration anywhere:
//!
//! * a [`Registry`] holds labeled **counters**, **gauges** and
//!   [`Histogram`]s in ordered maps, keyed by `(name, sorted labels)`;
//! * a [`Histogram`] stores **exact counts** in sparse log-spaced
//!   buckets (four linear sub-buckets per power-of-two octave), so any
//!   quantile of the same observations is the same `f64` on every
//!   platform — bucket indices come from [`f64::to_bits`], never from
//!   `log2`, whose last-ulp behaviour is libm-specific;
//! * a [`Snapshot`] is the registry frozen into sorted `Vec`s that
//!   serialize to byte-identical JSON and render to Prometheus text
//!   exposition or a human table.
//!
//! Merging is a monoid on every metric kind (counters add, histograms
//! add bucket-wise, gauges keep the right operand), so per-seed
//! registries from a soak campaign fold into one campaign snapshot
//! without losing exactness.

#![warn(missing_docs)]

mod histogram;
mod registry;
mod snapshot;

pub use histogram::Histogram;
pub use registry::Registry;
pub use snapshot::{CounterPoint, GaugePoint, HistogramPoint, Snapshot};
