//! The ordered metric registry.

use std::collections::BTreeMap;

use crate::histogram::Histogram;
use crate::snapshot::{CounterPoint, GaugePoint, HistogramPoint, Snapshot};

/// `(family name, labels sorted by key)` — the identity of one series.
type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// True when `labels` carries every `(key, value)` pair in `filter`.
fn matches(labels: &[(String, String)], filter: &[(&str, &str)]) -> bool {
    filter
        .iter()
        .all(|(fk, fv)| labels.iter().any(|(k, v)| k == fk && v == fv))
}

/// Labeled counters, gauges and histograms in ordered maps.
///
/// Counters are `f64` so they can accumulate both event counts and
/// quantities like wasted milliseconds; gauges are last-write-wins;
/// histograms are [`Histogram`]s. Series order is the `BTreeMap` order
/// of `(name, sorted labels)`, which is what makes [`Registry::snapshot`]
/// byte-reproducible.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<Key, f64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no series exists yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Increments a counter by 1.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.add(name, labels, 1.0);
    }

    /// Adds `v` to a counter (creating it at zero first).
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        *self.counters.entry(key(name, labels)).or_insert(0.0) += v;
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(key(name, labels), v);
    }

    /// Records one observation into a histogram series.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.histograms
            .entry(key(name, labels))
            .or_default()
            .observe(v);
    }

    /// Exact-series counter lookup (0 when absent). `labels` must match
    /// the full label set; use [`Registry::counter_sum`] for subsets.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.counters
            .get(&key(name, labels))
            .copied()
            .unwrap_or(0.0)
    }

    /// Sums every counter series of `name` whose labels contain all the
    /// `filter` pairs (an empty filter sums the whole family).
    pub fn counter_sum(&self, name: &str, filter: &[(&str, &str)]) -> f64 {
        self.counters
            .iter()
            .filter(|((n, l), _)| n == name && matches(l, filter))
            .map(|(_, v)| v)
            .sum()
    }

    /// Exact-series histogram lookup.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&key(name, labels))
    }

    /// Merges every histogram series of `name` whose labels contain all
    /// the `filter` pairs into one (empty when none match).
    pub fn histogram_sum(&self, name: &str, filter: &[(&str, &str)]) -> Histogram {
        let mut out = Histogram::new();
        for ((n, l), h) in &self.histograms {
            if n == name && matches(l, filter) {
                out.merge(h);
            }
        }
        out
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise, gauges keep `other`'s value. Associative, with the
    /// empty registry as identity on counters and histograms.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Freezes the registry into sorted vectors.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|((name, labels), &value)| CounterPoint {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|((name, labels), &value)| GaugePoint {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|((name, labels), hist)| HistogramPoint {
                    name: name.clone(),
                    labels: labels.clone(),
                    hist: hist.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_does_not_split_series() {
        let mut r = Registry::new();
        r.inc("requests", &[("a", "1"), ("b", "2")]);
        r.inc("requests", &[("b", "2"), ("a", "1")]);
        assert_eq!(r.counter("requests", &[("a", "1"), ("b", "2")]), 2.0);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn counter_sum_filters_by_label_subset() {
        let mut r = Registry::new();
        r.add("req", &[("p", "high"), ("o", "ok")], 3.0);
        r.add("req", &[("p", "high"), ("o", "err")], 1.0);
        r.add("req", &[("p", "low"), ("o", "ok")], 5.0);
        r.add("other", &[("p", "high")], 100.0);
        assert_eq!(r.counter_sum("req", &[]), 9.0);
        assert_eq!(r.counter_sum("req", &[("p", "high")]), 4.0);
        assert_eq!(r.counter_sum("req", &[("o", "ok")]), 8.0);
        assert_eq!(r.counter_sum("req", &[("p", "high"), ("o", "ok")]), 3.0);
        assert_eq!(r.counter_sum("missing", &[]), 0.0);
    }

    #[test]
    fn histogram_sum_merges_matching_series() {
        let mut r = Registry::new();
        r.observe("lat", &[("p", "high")], 1.0);
        r.observe("lat", &[("p", "low")], 4.0);
        assert_eq!(r.histogram_sum("lat", &[]).count, 2);
        assert_eq!(r.histogram_sum("lat", &[("p", "high")]).count, 1);
        assert_eq!(r.histogram("lat", &[("p", "low")]).unwrap().sum, 4.0);
    }

    #[test]
    fn merge_adds_counters_merges_histograms_overwrites_gauges() {
        let mut a = Registry::new();
        a.add("c", &[], 1.0);
        a.set_gauge("g", &[], 10.0);
        a.observe("h", &[], 2.0);
        let mut b = Registry::new();
        b.add("c", &[], 2.0);
        b.set_gauge("g", &[], 20.0);
        b.observe("h", &[], 8.0);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 3.0);
        assert_eq!(a.snapshot().gauges[0].value, 20.0);
        assert_eq!(a.histogram("h", &[]).unwrap().count, 2);
    }
}
