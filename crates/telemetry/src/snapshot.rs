//! Frozen registries: JSON round-tripping, Prometheus text exposition
//! and a human-readable table.

use serde::{Deserialize, Serialize};

use crate::histogram::Histogram;

/// One counter series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterPoint {
    /// Family name.
    pub name: String,
    /// Labels, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Accumulated value.
    pub value: f64,
}

/// One gauge series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugePoint {
    /// Family name.
    pub name: String,
    /// Labels, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Last written value.
    pub value: f64,
}

/// One histogram series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramPoint {
    /// Family name.
    pub name: String,
    /// Labels, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The exact-count histogram.
    pub hist: Histogram,
}

/// A registry frozen into sorted vectors. Serializing the same run's
/// snapshot twice yields byte-identical JSON — the property the soak
/// reproducibility check extends to metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Snapshot {
    /// Counter series, sorted by `(name, labels)`.
    pub counters: Vec<CounterPoint>,
    /// Gauge series, sorted by `(name, labels)`.
    pub gauges: Vec<GaugePoint>,
    /// Histogram series, sorted by `(name, labels)`.
    pub histograms: Vec<HistogramPoint>,
}

/// `k="v",…` with Prometheus-style escaping of `\`, `"` and newlines
/// in label values.
fn label_pairs(labels: &[(String, String)]) -> Vec<String> {
    labels
        .iter()
        .map(|(k, v)| {
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect()
}

/// `{k="v",…}`, or the empty string for an unlabeled series.
fn labelset(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", label_pairs(labels).join(","))
    }
}

/// `name{k="v",…}`.
fn series(name: &str, labels: &[(String, String)]) -> String {
    format!("{name}{}", labelset(labels))
}

/// `name_bucket{k="v",…,le="…"}` — the cumulative-bucket line name.
fn series_le(name: &str, labels: &[(String, String)], le: &str) -> String {
    let mut inner = label_pairs(labels);
    inner.push(format!("le=\"{le}\""));
    format!("{name}_bucket{{{}}}", inner.join(","))
}

impl Snapshot {
    /// Pretty JSON; byte-identical for identical registries.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parses a snapshot previously written by [`Snapshot::to_json`].
    pub fn from_json(body: &str) -> Result<Self, String> {
        serde_json::from_str(body).map_err(|e| format!("cannot parse metrics snapshot: {e}"))
    }

    /// Prometheus text exposition. Bucket lines are cumulative in
    /// ascending value order (negative buckets, zero, positive buckets,
    /// `+Inf`); each histogram also emits `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut typed = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for c in &self.counters {
            typed(&mut out, &c.name, "counter");
            out.push_str(&format!("{} {}\n", series(&c.name, &c.labels), c.value));
        }
        for g in &self.gauges {
            typed(&mut out, &g.name, "gauge");
            out.push_str(&format!("{} {}\n", series(&g.name, &g.labels), g.value));
        }
        for h in &self.histograms {
            typed(&mut out, &h.name, "histogram");
            let mut cum = 0u64;
            for (&idx, &c) in h.hist.neg.iter().rev() {
                cum += c;
                let le = format!("{}", -Histogram::bucket_lower(idx));
                out.push_str(&format!("{} {cum}\n", series_le(&h.name, &h.labels, &le)));
            }
            if h.hist.zero > 0 {
                cum += h.hist.zero;
                out.push_str(&format!("{} {cum}\n", series_le(&h.name, &h.labels, "0")));
            }
            for (&idx, &c) in &h.hist.pos {
                cum += c;
                let le = format!("{}", Histogram::bucket_upper(idx));
                out.push_str(&format!("{} {cum}\n", series_le(&h.name, &h.labels, &le)));
            }
            out.push_str(&format!(
                "{} {}\n",
                series_le(&h.name, &h.labels, "+Inf"),
                h.hist.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                h.name,
                labelset(&h.labels),
                h.hist.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                h.name,
                labelset(&h.labels),
                h.hist.count
            ));
        }
        out
    }

    /// A sorted, aligned human table: one line per series, histograms
    /// summarized by count/percentiles/extremes.
    pub fn to_table(&self) -> String {
        let mut lines: Vec<(String, String)> = Vec::new();
        for c in &self.counters {
            lines.push((series(&c.name, &c.labels), format!("{}", c.value)));
        }
        for g in &self.gauges {
            lines.push((series(&g.name, &g.labels), format!("gauge {}", g.value)));
        }
        for h in &self.histograms {
            let s = &h.hist;
            lines.push((
                series(&h.name, &h.labels),
                format!(
                    "count {} p50 {} p90 {} p99 {} p999 {} min {} max {} sum {}",
                    s.count,
                    s.quantile(0.5),
                    s.quantile(0.9),
                    s.quantile(0.99),
                    s.quantile(0.999),
                    s.min,
                    s.max,
                    s.sum
                ),
            ));
        }
        lines.sort();
        let width = lines.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in lines {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.add("req_total", &[("p", "high"), ("outcome", "ok")], 4.0);
        r.set_gauge("util_pct", &[("device", "dev0")], 62.5);
        for v in [0.0, 1.0, 2.0, -4.0] {
            r.observe("slack_ms", &[("p", "high")], v);
        }
        r
    }

    #[test]
    fn json_round_trips_and_is_byte_stable() {
        let snap = sample().snapshot();
        let json = snap.to_json();
        assert_eq!(json, sample().snapshot().to_json(), "byte-identical");
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed, snap);
        assert!(Snapshot::from_json("not json").is_err());
    }

    #[test]
    fn prometheus_exposition_has_types_and_cumulative_buckets() {
        let prom = sample().snapshot().to_prometheus();
        assert!(prom.contains("# TYPE req_total counter"), "{prom}");
        assert!(prom.contains("# TYPE util_pct gauge"), "{prom}");
        assert!(prom.contains("# TYPE slack_ms histogram"), "{prom}");
        assert!(
            prom.contains("req_total{outcome=\"ok\",p=\"high\"} 4"),
            "{prom}"
        );
        // -4 then 0 then the positive buckets then +Inf, cumulatively.
        assert!(
            prom.contains("slack_ms_bucket{p=\"high\",le=\"-4\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("slack_ms_bucket{p=\"high\",le=\"0\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("slack_ms_bucket{p=\"high\",le=\"+Inf\"} 4"),
            "{prom}"
        );
        assert!(prom.contains("slack_ms_sum{p=\"high\"} -1"), "{prom}");
        assert!(prom.contains("slack_ms_count{p=\"high\"} 4"), "{prom}");
    }

    #[test]
    fn table_is_sorted_and_aligned() {
        let table = sample().snapshot().to_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "table rows are sorted");
        assert!(table.contains("count 4"), "{table}");
        assert!(table.contains("p50 0"), "{table}");
    }
}
