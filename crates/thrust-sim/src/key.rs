//! Radix-sortable key types.
//!
//! LSD radix sort needs keys as unsigned bit patterns whose numeric order
//! matches the key's order. For `u32` that is the identity; for `i32` flip
//! the sign bit; for `f32` apply the classic order-preserving transform
//! (flip all bits of negatives, flip only the sign bit of non-negatives) —
//! the same trick Thrust uses for floating-point radix sorts. NaNs map
//! above +∞ (`total_cmp` order).

/// A 32-bit key type with an order-preserving mapping to `u32`.
pub trait RadixKey: Copy + Default + Send + Sync + 'static {
    /// Maps to a `u32` such that `a < b ⇔ a.to_radix_bits() < b.to_radix_bits()`.
    fn to_radix_bits(self) -> u32;
    /// Inverse of [`RadixKey::to_radix_bits`].
    fn from_radix_bits(bits: u32) -> Self;
}

impl RadixKey for u32 {
    #[inline]
    fn to_radix_bits(self) -> u32 {
        self
    }
    #[inline]
    fn from_radix_bits(bits: u32) -> Self {
        bits
    }
}

impl RadixKey for i32 {
    #[inline]
    fn to_radix_bits(self) -> u32 {
        (self as u32) ^ 0x8000_0000
    }
    #[inline]
    fn from_radix_bits(bits: u32) -> Self {
        (bits ^ 0x8000_0000) as i32
    }
}

impl RadixKey for f32 {
    #[inline]
    fn to_radix_bits(self) -> u32 {
        let b = self.to_bits();
        if b & 0x8000_0000 != 0 {
            !b
        } else {
            b | 0x8000_0000
        }
    }
    #[inline]
    fn from_radix_bits(bits: u32) -> Self {
        let b = if bits & 0x8000_0000 != 0 {
            bits & 0x7FFF_FFFF
        } else {
            !bits
        };
        f32::from_bits(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<K: RadixKey + PartialEq + std::fmt::Debug>(k: K) {
        assert_eq!(K::from_radix_bits(k.to_radix_bits()), k);
    }

    #[test]
    fn u32_is_identity() {
        for v in [0u32, 1, 42, u32::MAX] {
            assert_eq!(v.to_radix_bits(), v);
            round_trip(v);
        }
    }

    #[test]
    fn i32_order_preserved() {
        let vals = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for w in vals.windows(2) {
            assert!(
                w[0].to_radix_bits() < w[1].to_radix_bits(),
                "{} vs {}",
                w[0],
                w[1]
            );
            round_trip(w[0]);
        }
    }

    #[test]
    fn f32_order_preserved_including_negatives() {
        let vals = [
            f32::NEG_INFINITY,
            -1e30,
            -3.5,
            -0.0,
            0.0,
            1e-30,
            3.5,
            1e30,
            f32::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                w[0].to_radix_bits() <= w[1].to_radix_bits(),
                "{} !<= {}",
                w[0],
                w[1]
            );
            round_trip(w[0]);
        }
        // -0.0 and 0.0 map to adjacent but ordered bit patterns.
        assert!((-0.0f32).to_radix_bits() < 0.0f32.to_radix_bits());
    }

    #[test]
    fn f32_nan_sorts_above_infinity() {
        assert!(f32::NAN.to_radix_bits() > f32::INFINITY.to_radix_bits());
    }

    #[test]
    fn f32_bit_round_trip_is_lossless() {
        for v in [
            0.0f32,
            -0.0,
            1.5,
            -1.5,
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::NAN,
        ] {
            let back = f32::from_radix_bits(v.to_radix_bits());
            assert_eq!(back.to_bits(), v.to_bits(), "bit-exact round trip for {v}");
        }
    }
}
