//! # thrust-sim — Thrust-like primitives on the simulated GPU
//!
//! The GPU-ArraySort paper compares against a baseline built from NVIDIA's
//! Thrust library (`stable_sort_by_key`, radix sort underneath). This crate
//! is that substrate, implemented from scratch on [`gpu_sim`]:
//!
//! * [`scan`] — device-wide exclusive prefix sum (GPU Gems 3 style block
//!   scan + recursion), the backbone of the radix sort;
//! * [`radix`] — stable LSD radix sort (`stable_sort_by_key`,
//!   [`sort_keys`]) with Thrust's O(N) double-buffer footprint, charged to
//!   the device ledger;
//! * [`reduce`] — device-wide reductions;
//! * [`sta`] — the paper's §7.1 baseline: tag, flatten, sort twice, which
//!   the evaluation (Figs. 4–7, Table 1) measures GPU-ArraySort against.
//!
//! ```
//! use gpu_sim::{DeviceSpec, Gpu};
//!
//! let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
//! // Two arrays of three floats, flattened.
//! let mut data = vec![3.0f32, 1.0, 2.0, 9.0, 7.0, 8.0];
//! thrust_sim::sta::sort_arrays(&mut gpu, &mut data, 3).unwrap();
//! assert_eq!(data, vec![1.0, 2.0, 3.0, 7.0, 8.0, 9.0]);
//! ```

#![warn(missing_docs)]

pub mod key;
pub mod radix;
pub mod reduce;
pub mod scan;
pub mod segmented;
pub mod sta;

pub use key::RadixKey;
pub use radix::{sort_keys, stable_sort_by_key, DeviceValue};
pub use reduce::{reduce_u32, MaxOp, MinOp, SumOp};
pub use scan::exclusive_scan;
pub use segmented::{segmented_sort, SegSortStats};
pub use sta::{
    max_arrays as sta_max_arrays, sort_arrays as sta_sort_arrays, StaMemoryPlan, StaStats,
};
