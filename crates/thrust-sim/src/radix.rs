//! Stable LSD radix sort, the algorithm under Thrust's
//! `stable_sort_by_key` (Satish/Harris/Garland, the paper's reference
//! \[18\]).
//!
//! Four 8-bit passes over 32-bit keys; each pass is the histogram → scan →
//! stable scatter pipeline:
//!
//! 1. **histogram** — every block counts the digit occurrences of its tile
//!    into shared counters and writes them to a digit-major global table
//!    `hist[digit][tile]`;
//! 2. **scan** — a device-wide exclusive scan of that table yields, for
//!    every (digit, tile) pair, the global base offset of that tile's
//!    elements with that digit (digit-major order is what makes the
//!    scatter stable across tiles);
//! 3. **scatter** — every block recomputes local stable ranks for its tile
//!    and writes each key (and its value) to `base[digit][tile] + rank`.
//!
//! Like Thrust, the sort ping-pongs between the primary buffers and an
//! equally sized pair of temporaries — this O(N) extra space is exactly
//! the memory overhead the paper charges against the STA baseline (§7.1),
//! and it is allocated on the device ledger so capacity experiments see it.
//!
//! Simulation note: charges model a shared-memory ranking implementation
//! (coalesced tile reads, per-element shared-memory traffic, semi-coalesced
//! scatter writes — consecutive same-digit elements land contiguously, so
//! writes average a few transactions per warp, charged as `Strided(2)`).
//! The equivalent data movement runs once per block.

use gpu_sim::{AccessPattern, DeviceBuffer, Gpu, LaunchConfig, SimResult};

use crate::key::RadixKey;
use crate::scan::exclusive_scan;

/// Bits sorted per pass.
pub const RADIX_BITS: u32 = 8;
/// Number of digit bins per pass.
pub const RADIX_DIGITS: usize = 1 << RADIX_BITS;
/// Passes needed for a 32-bit key.
pub const RADIX_PASSES: u32 = 32 / RADIX_BITS;
/// Threads per radix block.
pub const RADIX_THREADS: u32 = 256;
/// Elements per radix tile (16 per thread).
pub const RADIX_TILE: usize = 4096;

/// A value type that can ride along with keys ("values" of
/// `sort_by_key`).
pub trait DeviceValue: Copy + Default + Send + Sync + 'static {}
impl<T: Copy + Default + Send + Sync + 'static> DeviceValue for T {}

/// Sorts `keys` (with `values` permuted identically) stably and in
/// ascending key order. Buffer lengths must match.
///
/// Allocates two temporary buffers of the same size (the Thrust/radix O(N)
/// overhead) plus the digit histogram; all are freed on return.
pub fn stable_sort_by_key<K: RadixKey, V: DeviceValue>(
    gpu: &mut Gpu,
    keys: &mut DeviceBuffer<K>,
    values: &mut DeviceBuffer<V>,
) -> SimResult<()> {
    assert_eq!(keys.len(), values.len(), "key/value length mismatch");
    let len = keys.len();
    if len <= 1 {
        return Ok(());
    }

    let alt_keys: DeviceBuffer<K> = gpu.alloc(len)?;
    let alt_values: DeviceBuffer<V> = gpu.alloc(len)?;
    let num_tiles = len.div_ceil(RADIX_TILE);
    let mut hist: DeviceBuffer<u32> = gpu.alloc(RADIX_DIGITS * num_tiles)?;

    // Ping-pong: pass 0 reads (keys, values) -> (alt, alt); pass 1 back, …
    // RADIX_PASSES is even, so the final output lands in the primary pair.
    for pass in 0..RADIX_PASSES {
        let shift = pass * RADIX_BITS;
        let forward = pass % 2 == 0;
        let (src_k, dst_k) = if forward {
            (&*keys, &alt_keys)
        } else {
            (&alt_keys, &*keys)
        };
        let (src_v, dst_v) = if forward {
            (&*values, &alt_values)
        } else {
            (&alt_values, &*values)
        };

        histogram_kernel(gpu, src_k, &hist, len, num_tiles, shift)?;
        exclusive_scan(gpu, &mut hist)?;
        scatter_kernel(
            gpu, src_k, src_v, dst_k, dst_v, &hist, len, num_tiles, shift,
        )?;
    }
    Ok(())
}

/// Sorts `keys` only (no payload).
pub fn sort_keys<K: RadixKey>(gpu: &mut Gpu, keys: &mut DeviceBuffer<K>) -> SimResult<()> {
    // A zero-sized payload would dodge the value traffic the cost model
    // should see; use a 1-byte payload: cheap, but honest about the pass structure.
    let mut dummy: DeviceBuffer<u8> = gpu.alloc(keys.len())?;
    stable_sort_by_key(gpu, keys, &mut dummy)
}

#[allow(clippy::too_many_arguments)]
fn histogram_kernel<K: RadixKey>(
    gpu: &mut Gpu,
    src: &DeviceBuffer<K>,
    hist: &DeviceBuffer<u32>,
    len: usize,
    num_tiles: usize,
    shift: u32,
) -> SimResult<()> {
    let src_view = src.view();
    let hist_view = hist.view();
    let cfg = LaunchConfig::grid(num_tiles as u32, RADIX_THREADS)
        .with_shared((RADIX_DIGITS * std::mem::size_of::<u32>()) as u32);
    gpu.launch("radix_histogram", cfg, |block| {
        let b = block.block_idx() as usize;
        let tile_start = b * RADIX_TILE;
        let tile_len = RADIX_TILE.min(len - tile_start);
        let elems_per_thread = (tile_len as u64).div_ceil(RADIX_THREADS as u64).min(16);
        block.threads(|t| {
            // Read the tile coalesced; one shared-atomic bump per element.
            t.charge_global(elems_per_thread, 4, AccessPattern::Coalesced);
            t.charge_alu(3 * elems_per_thread); // shift/mask/index math
            t.charge_atomic_shared(elems_per_thread);
            // Calibrated Thrust-on-Kepler overhead (30% of a pass's bill
            // lands in the histogram kernel) — see CostModel::thrust_elem_cycles.
            t.charge_baseline_sort(elems_per_thread, 0.3);
            if t.tid == 0 {
                // Equivalent work once per block: count the tile's digits
                // and publish to the digit-major table.
                // SAFETY: tile is block-exclusive; hist rows are written at
                // column block_idx only by this block.
                let tile = unsafe { src_view.slice(tile_start, tile_len) };
                let mut counts = [0u32; RADIX_DIGITS];
                for k in tile {
                    let d = ((k.to_radix_bits() >> shift) & (RADIX_DIGITS as u32 - 1)) as usize;
                    counts[d] += 1;
                }
                for (d, &c) in counts.iter().enumerate() {
                    hist_view.set(d * num_tiles + b, c);
                }
            }
        });
        // Publishing 256 counters to the digit-major table: one store per
        // counter, strided by num_tiles → effectively scattered.
        block.threads(|t| {
            t.charge_global(1, 4, AccessPattern::Scattered);
        });
    })?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn scatter_kernel<K: RadixKey, V: DeviceValue>(
    gpu: &mut Gpu,
    src_k: &DeviceBuffer<K>,
    src_v: &DeviceBuffer<V>,
    dst_k: &DeviceBuffer<K>,
    dst_v: &DeviceBuffer<V>,
    hist: &DeviceBuffer<u32>,
    len: usize,
    num_tiles: usize,
    shift: u32,
) -> SimResult<()> {
    let sk = src_k.view();
    let sv = src_v.view();
    let dk = dst_k.view();
    let dv = dst_v.view();
    let hv = hist.view();
    let val_bytes = std::mem::size_of::<V>() as u32;
    let cfg = LaunchConfig::grid(num_tiles as u32, RADIX_THREADS)
        .with_shared((RADIX_DIGITS * std::mem::size_of::<u32>() * 2) as u32);
    gpu.launch("radix_scatter", cfg, |block| {
        let b = block.block_idx() as usize;
        let tile_start = b * RADIX_TILE;
        let tile_len = RADIX_TILE.min(len - tile_start);
        let elems_per_thread = (tile_len as u64).div_ceil(RADIX_THREADS as u64).min(16);
        block.threads(|t| {
            // Re-read tile (key + value) coalesced, compute a stable local
            // rank via shared-memory digit scan (~8 ALU + 4 shared per
            // element, the amortized cost of the per-digit flag scans),
            // then write key+value to the destination. Consecutive
            // same-digit elements write contiguously, so stores average a
            // couple of transactions per warp: Strided(2).
            t.charge_global(elems_per_thread, 4, AccessPattern::Coalesced);
            t.charge_global(elems_per_thread, val_bytes, AccessPattern::Coalesced);
            t.charge_alu(8 * elems_per_thread);
            t.charge_shared(4 * elems_per_thread);
            t.charge_global(elems_per_thread, 4, AccessPattern::Strided(2));
            t.charge_global(elems_per_thread, val_bytes, AccessPattern::Strided(2));
            // Calibrated Thrust-on-Kepler overhead (70% of a pass's bill
            // lands in the scatter) — see CostModel::thrust_elem_cycles.
            t.charge_baseline_sort(elems_per_thread, 0.7);
            if t.tid == 0 {
                // Equivalent stable scatter once per block: walk the tile
                // in element order, bumping per-digit cursors that start at
                // the scanned digit-major base offsets.
                // SAFETY: src tile block-exclusive; every destination index
                // is written exactly once across the whole launch because
                // the scanned offsets partition [0, len).
                let keys = unsafe { sk.slice(tile_start, tile_len) };
                let vals = unsafe { sv.slice(tile_start, tile_len) };
                let mut cursors = [0u32; RADIX_DIGITS];
                for (d, c) in cursors.iter_mut().enumerate() {
                    *c = hv.get(d * num_tiles + b);
                }
                for (k, v) in keys.iter().zip(vals) {
                    let d = ((k.to_radix_bits() >> shift) & (RADIX_DIGITS as u32 - 1)) as usize;
                    let dst = cursors[d] as usize;
                    cursors[d] += 1;
                    dk.set(dst, *k);
                    dv.set(dst, *v);
                }
            }
        });
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::tesla_k40c())
    }

    fn sort_u32(input: Vec<u32>) -> Vec<u32> {
        let mut g = gpu();
        let mut keys = g.htod_copy(&input).unwrap();
        let mut vals = g.htod_copy(&vec![0u8; input.len()]).unwrap();
        stable_sort_by_key(&mut g, &mut keys, &mut vals).unwrap();
        keys.to_host_vec()
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(sort_u32(vec![]), Vec::<u32>::new());
        assert_eq!(sort_u32(vec![9]), vec![9]);
    }

    #[test]
    fn small_reverse() {
        assert_eq!(
            sort_u32((0..100).rev().collect()),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_tile_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let input: Vec<u32> = (0..3 * RADIX_TILE + 123).map(|_| rng.gen()).collect();
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(sort_u32(input), expect);
    }

    #[test]
    fn sorts_all_digit_positions() {
        // Values differing only in the high byte exercise the last pass.
        let input: Vec<u32> = (0..512u32).rev().map(|i| i << 24).collect();
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(sort_u32(input), expect);
    }

    #[test]
    fn f32_keys_sort_in_float_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let input: Vec<f32> = (0..10_000).map(|_| rng.gen_range(-1e6f32..1e6)).collect();
        let mut g = gpu();
        let mut keys = g.htod_copy(&input).unwrap();
        let mut vals = g.htod_copy(&vec![0u8; input.len()]).unwrap();
        stable_sort_by_key(&mut g, &mut keys, &mut vals).unwrap();
        let out = keys.to_host_vec();
        let mut expect = input;
        expect.sort_by(f32::total_cmp);
        assert_eq!(out, expect);
    }

    #[test]
    fn f32_special_values_sort_in_total_cmp_order() {
        let input = vec![
            f32::NAN,
            f32::INFINITY,
            -0.0f32,
            1.5,
            f32::NEG_INFINITY,
            -f32::NAN,
            0.0,
            -1.5,
            f32::MIN_POSITIVE,
        ];
        let mut g = gpu();
        let mut keys = g.htod_copy(&input).unwrap();
        let mut vals = g.htod_copy(&vec![0u8; input.len()]).unwrap();
        stable_sort_by_key(&mut g, &mut keys, &mut vals).unwrap();
        let out = keys.to_host_vec();
        let mut expect = input;
        expect.sort_by(f32::total_cmp);
        assert_eq!(
            out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "NaNs, infinities and signed zeros in total_cmp order"
        );
    }

    #[test]
    fn payload_follows_keys() {
        let keys_in: Vec<u32> = vec![5, 3, 9, 1, 7];
        let vals_in: Vec<u32> = vec![50, 30, 90, 10, 70];
        let mut g = gpu();
        let mut keys = g.htod_copy(&keys_in).unwrap();
        let mut vals = g.htod_copy(&vals_in).unwrap();
        stable_sort_by_key(&mut g, &mut keys, &mut vals).unwrap();
        assert_eq!(keys.to_host_vec(), vec![1, 3, 5, 7, 9]);
        assert_eq!(vals.to_host_vec(), vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn stability_on_duplicate_keys() {
        // Many duplicate keys across tiles; payload records original index.
        let n = 2 * RADIX_TILE + 777;
        let keys_in: Vec<u32> = (0..n).map(|i| (i % 7) as u32).collect();
        let vals_in: Vec<u32> = (0..n as u32).collect();
        let mut g = gpu();
        let mut keys = g.htod_copy(&keys_in).unwrap();
        let mut vals = g.htod_copy(&vals_in).unwrap();
        stable_sort_by_key(&mut g, &mut keys, &mut vals).unwrap();
        let k = keys.to_host_vec();
        let v = vals.to_host_vec();
        assert!(k.windows(2).all(|w| w[0] <= w[1]));
        // Within each equal-key run the original indices must ascend.
        for w in k.iter().zip(&v).collect::<Vec<_>>().windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated for key {}", w[0].0);
            }
        }
    }

    #[test]
    fn temporaries_are_freed_and_counted() {
        let mut g = gpu();
        let n = 100_000usize;
        let mut keys = g.htod_copy(&vec![1u32; n]).unwrap();
        let mut vals = g.htod_copy(&vec![2u32; n]).unwrap();
        let data_bytes = keys.size_bytes() + vals.size_bytes();
        stable_sort_by_key(&mut g, &mut keys, &mut vals).unwrap();
        assert_eq!(g.ledger().used(), data_bytes, "alt buffers freed");
        // Peak must include both alt buffers: ≥ 2× the data.
        assert!(
            g.ledger().peak() >= 2 * data_bytes,
            "peak {} should show the Thrust O(N) overhead over data {}",
            g.ledger().peak(),
            data_bytes
        );
        assert!(g.timeline().kernels_named("radix").count() >= 8);
    }

    #[test]
    fn sort_keys_convenience() {
        let mut g = gpu();
        let mut keys = g.htod_copy(&[3u32, 1, 2]).unwrap();
        sort_keys(&mut g, &mut keys).unwrap();
        assert_eq!(keys.to_host_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn oom_when_alt_buffers_do_not_fit() {
        let mut g = Gpu::new(DeviceSpec::test_device()); // 60 MiB usable
                                                         // 10M u32 keys + 10M u32 values = 80 MB primary... too big already;
                                                         // use 5M+5M = 40 MB primary, alts need another 40 MB > 20 MB left.
        let n = 5_000_000;
        let mut keys = g.htod_copy(&vec![0u32; n]).unwrap();
        let mut vals = g.htod_copy(&vec![0u32; n]).unwrap();
        let err = stable_sort_by_key(&mut g, &mut keys, &mut vals).unwrap_err();
        assert!(matches!(err, gpu_sim::SimError::OutOfMemory { .. }));
    }
}
