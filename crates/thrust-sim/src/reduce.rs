//! Device-wide reductions (Thrust's `reduce` / `minmax_element`).
//!
//! Tree reduction per block tile into a partials buffer, recursing until a
//! single value remains. Used by tests and by the bucket-balance
//! diagnostics in the array-sort crate's ablations.

use gpu_sim::{AccessPattern, DeviceBuffer, Gpu, LaunchConfig, SimResult};

/// Threads per reduction block.
pub const REDUCE_THREADS: u32 = 256;
/// Elements reduced by one block.
pub const REDUCE_TILE: usize = 2048;

const LOG2_THREADS: u64 = REDUCE_THREADS.trailing_zeros() as u64;

/// A binary, associative, commutative combine step on `u64` world values.
/// The reduction loads `u32` elements and widens, so sums cannot overflow.
pub trait ReduceOp: Copy + Send + Sync {
    /// Identity element.
    fn identity(&self) -> u64;
    /// Combines two partial results.
    fn combine(&self, a: u64, b: u64) -> u64;
}

/// Sum.
#[derive(Clone, Copy, Debug)]
pub struct SumOp;
impl ReduceOp for SumOp {
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Maximum.
#[derive(Clone, Copy, Debug)]
pub struct MaxOp;
impl ReduceOp for MaxOp {
    fn identity(&self) -> u64 {
        0
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

/// Minimum.
#[derive(Clone, Copy, Debug)]
pub struct MinOp;
impl ReduceOp for MinOp {
    fn identity(&self) -> u64 {
        u64::MAX
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

/// Reduces a `u32` device buffer with `op`, returning the scalar.
pub fn reduce_u32<O: ReduceOp>(gpu: &mut Gpu, buf: &DeviceBuffer<u32>, op: O) -> SimResult<u64> {
    let mut len = buf.len();
    if len == 0 {
        return Ok(op.identity());
    }
    // First level reads the input; subsequent levels reduce partials. The
    // partials are u64 stored as two u32s? Keep it simple and exact: store
    // partials in a host-mirrored u64 vec inside device buffers of u64...
    // u64 device buffers are fine — the ledger charges 8 bytes each.
    let mut partials: DeviceBuffer<u64> = gpu.alloc(len.div_ceil(REDUCE_TILE))?;
    reduce_level_u32(gpu, buf, &partials, len, op)?;
    len = partials.len();
    while len > 1 {
        let next: DeviceBuffer<u64> = gpu.alloc(len.div_ceil(REDUCE_TILE))?;
        reduce_level_u64(gpu, &partials, &next, len, op)?;
        partials = next;
        len = partials.len();
    }
    Ok(partials.as_slice()[0])
}

fn reduce_level_u32<O: ReduceOp>(
    gpu: &mut Gpu,
    src: &DeviceBuffer<u32>,
    dst: &DeviceBuffer<u64>,
    len: usize,
    op: O,
) -> SimResult<()> {
    let sv = src.view();
    let dv = dst.view();
    let tiles = len.div_ceil(REDUCE_TILE) as u32;
    let cfg = LaunchConfig::grid(tiles, REDUCE_THREADS)
        .with_shared(REDUCE_THREADS * std::mem::size_of::<u64>() as u32);
    gpu.launch("reduce_u32", cfg, |block| {
        let b = block.block_idx() as usize;
        let start = b * REDUCE_TILE;
        let tlen = REDUCE_TILE.min(len - start);
        let per_thread = (tlen as u64).div_ceil(REDUCE_THREADS as u64);
        block.threads(|t| {
            // Grid-stride loads + shared-memory tree (log2 steps).
            t.charge_global(per_thread, 4, AccessPattern::Coalesced);
            t.charge_alu(per_thread + 2 * LOG2_THREADS);
            t.charge_shared(2 * LOG2_THREADS);
            if t.tid == 0 {
                // SAFETY: block-exclusive tile; dst slot unique per block.
                let tile = unsafe { sv.slice(start, tlen) };
                let mut acc = op.identity();
                for &x in tile {
                    acc = op.combine(acc, x as u64);
                }
                dv.set(b, acc);
            }
        });
    })?;
    Ok(())
}

fn reduce_level_u64<O: ReduceOp>(
    gpu: &mut Gpu,
    src: &DeviceBuffer<u64>,
    dst: &DeviceBuffer<u64>,
    len: usize,
    op: O,
) -> SimResult<()> {
    let sv = src.view();
    let dv = dst.view();
    let tiles = len.div_ceil(REDUCE_TILE) as u32;
    let cfg = LaunchConfig::grid(tiles, REDUCE_THREADS)
        .with_shared(REDUCE_THREADS * std::mem::size_of::<u64>() as u32);
    gpu.launch("reduce_u64", cfg, |block| {
        let b = block.block_idx() as usize;
        let start = b * REDUCE_TILE;
        let tlen = REDUCE_TILE.min(len - start);
        let per_thread = (tlen as u64).div_ceil(REDUCE_THREADS as u64);
        block.threads(|t| {
            t.charge_global(per_thread, 8, AccessPattern::Coalesced);
            t.charge_alu(per_thread + 2 * LOG2_THREADS);
            t.charge_shared(2 * LOG2_THREADS);
            if t.tid == 0 {
                // SAFETY: block-exclusive tile; dst slot unique per block.
                let tile = unsafe { sv.slice(start, tlen) };
                let mut acc = op.identity();
                for &x in tile {
                    acc = op.combine(acc, x);
                }
                dv.set(b, acc);
            }
        });
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::tesla_k40c())
    }

    #[test]
    fn empty_reduction_yields_identity() {
        let mut g = gpu();
        let buf = g.alloc::<u32>(0).unwrap();
        assert_eq!(reduce_u32(&mut g, &buf, SumOp).unwrap(), 0);
        assert_eq!(reduce_u32(&mut g, &buf, MinOp).unwrap(), u64::MAX);
    }

    #[test]
    fn sum_small() {
        let mut g = gpu();
        let buf = g.htod_copy(&[1u32, 2, 3, 4]).unwrap();
        assert_eq!(reduce_u32(&mut g, &buf, SumOp).unwrap(), 10);
    }

    #[test]
    fn sum_multi_level() {
        let mut g = gpu();
        let n = REDUCE_TILE * REDUCE_TILE / 4 + 999; // forces ≥2 levels
        let buf = g.htod_copy(&vec![3u32; n]).unwrap();
        assert_eq!(reduce_u32(&mut g, &buf, SumOp).unwrap(), 3 * n as u64);
    }

    #[test]
    fn min_max() {
        let mut g = gpu();
        let data: Vec<u32> = (0..5000)
            .map(|i| (i * 2654435761u64 % 1_000_003) as u32)
            .collect();
        let buf = g.htod_copy(&data).unwrap();
        let lo = reduce_u32(&mut g, &buf, MinOp).unwrap();
        let hi = reduce_u32(&mut g, &buf, MaxOp).unwrap();
        assert_eq!(lo, *data.iter().min().unwrap() as u64);
        assert_eq!(hi, *data.iter().max().unwrap() as u64);
    }

    #[test]
    fn sum_survives_u32_overflow() {
        let mut g = gpu();
        let buf = g.htod_copy(&[u32::MAX; 10]).unwrap();
        assert_eq!(
            reduce_u32(&mut g, &buf, SumOp).unwrap(),
            10 * u32::MAX as u64
        );
    }
}
