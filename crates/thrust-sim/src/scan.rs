//! Device-wide exclusive prefix sum (scan).
//!
//! The classic three-kernel recursion Thrust/CUB use, after Harris et al.'s
//! GPU Gems 3 chapter (the paper's reference \[17\]): a work-efficient
//! Blelloch scan per block tile, a recursive scan of the per-tile totals,
//! and a uniform add that folds the scanned totals back into the tiles.
//! The radix sort ranks its digit histograms with this.
//!
//! Simulation note: each block charges the Blelloch cost pattern for every
//! thread (loads/stores coalesced, `2·log₂(tile)` shared-memory sweep
//! steps), while the equivalent data movement is performed once per block.
//! Results are bit-identical to a sequential exclusive scan.

use gpu_sim::{AccessPattern, DeviceBuffer, Gpu, LaunchConfig, SimResult};

/// Threads per scan block.
pub const SCAN_THREADS: u32 = 256;
/// Elements scanned by one block (two per thread, Blelloch style).
pub const SCAN_TILE: usize = 512;

const LOG2_TILE: u64 = SCAN_TILE.trailing_zeros() as u64;

/// Implementation shared by the public entry points: scan tiles → scan tile
/// sums (recursively) → uniform add. Returns the grand total.
fn exclusive_scan_impl(gpu: &mut Gpu, buf: &DeviceBuffer<u32>, len: usize) -> SimResult<u64> {
    if len == 0 {
        return Ok(0);
    }
    let num_tiles = len.div_ceil(SCAN_TILE);
    let mut sums: DeviceBuffer<u32> = gpu.alloc(num_tiles)?;
    let view = buf.view();
    let sums_view = sums.view();

    scan_tiles_kernel(gpu, view, len, num_tiles as u32, Some(sums_view))?;

    let total = if num_tiles == 1 {
        // The lone tile's total is in sums[0].
        sums.as_slice()[0] as u64
    } else {
        let t = exclusive_scan_impl(gpu, &sums, num_tiles)?;
        uniform_add_kernel(gpu, view, sums_view, len, num_tiles as u32)?;
        t
    };
    Ok(total)
}

/// Per-tile Blelloch scan. Writes each tile's pre-scan total into
/// `sums[block]` when provided.
fn scan_tiles_kernel(
    gpu: &mut Gpu,
    view: gpu_sim::GlobalView<'_, u32>,
    len: usize,
    num_tiles: u32,
    sums: Option<gpu_sim::GlobalView<'_, u32>>,
) -> SimResult<gpu_sim::KernelStats> {
    let cfg = LaunchConfig::grid(num_tiles, SCAN_THREADS)
        .with_shared((SCAN_TILE * std::mem::size_of::<u32>()) as u32);
    gpu.launch("scan_tiles", cfg, |block| {
        let b = block.block_idx() as usize;
        let tile_start = b * SCAN_TILE;
        let tile_len = SCAN_TILE.min(len - tile_start);
        let elems_per_thread = 2u64;
        block.threads(|t| {
            // Cost model: load 2 elements coalesced, run the up/down
            // sweeps (4 shared accesses + 2 ALU per step), store 2.
            t.charge_global(elems_per_thread, 4, AccessPattern::Coalesced);
            t.charge_shared(elems_per_thread);
            t.charge_shared(4 * LOG2_TILE);
            t.charge_alu(2 * LOG2_TILE);
            t.charge_global(elems_per_thread, 4, AccessPattern::Coalesced);
            if t.tid == 0 {
                // Equivalent data movement, once per block: exclusive scan
                // of the tile; total to sums[block].
                // SAFETY: this block exclusively owns its tile; sums slot is
                // written only by this block.
                let tile = unsafe { view.slice_mut(tile_start, tile_len) };
                let mut acc = 0u32;
                for v in tile.iter_mut() {
                    let x = *v;
                    *v = acc;
                    acc = acc.wrapping_add(x);
                }
                if let Some(s) = sums {
                    s.set(b, acc);
                }
            }
        });
    })
}

/// Adds the scanned tile totals back into every tile but the first
/// conceptually — offsets are exclusive, so tile `b` adds `sums[b]`.
fn uniform_add_kernel(
    gpu: &mut Gpu,
    view: gpu_sim::GlobalView<'_, u32>,
    sums: gpu_sim::GlobalView<'_, u32>,
    len: usize,
    num_tiles: u32,
) -> SimResult<gpu_sim::KernelStats> {
    let cfg = LaunchConfig::grid(num_tiles, SCAN_THREADS);
    gpu.launch("scan_uniform_add", cfg, |block| {
        let b = block.block_idx() as usize;
        let tile_start = b * SCAN_TILE;
        let tile_len = SCAN_TILE.min(len - tile_start);
        block.threads(|t| {
            t.charge_global(1, 4, AccessPattern::Broadcast); // read sums[b]
            t.charge_global(4, 4, AccessPattern::Coalesced); // 2 loads + 2 stores
            t.charge_alu(2);
            if t.tid == 0 {
                let offset = sums.get(b);
                // SAFETY: block-exclusive tile.
                let tile = unsafe { view.slice_mut(tile_start, tile_len) };
                for v in tile.iter_mut() {
                    *v = v.wrapping_add(offset);
                }
            }
        });
    })
}

/// In-place device-wide **exclusive** scan of `buf`; returns the total sum
/// of the input (the value that would follow the last output element).
/// Like the device scan it models, arithmetic is `u32` wrapping — the
/// returned total is the wrapped `u32` sum widened to `u64`.
pub fn exclusive_scan(gpu: &mut Gpu, buf: &mut DeviceBuffer<u32>) -> SimResult<u64> {
    let len = buf.len();
    exclusive_scan_impl(gpu, buf, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn scan_host(input: &[u32]) -> (Vec<u32>, u64) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u64;
        for &x in input {
            out.push(acc as u32);
            acc += x as u64;
        }
        (out, acc)
    }

    fn check(input: Vec<u32>) {
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        let mut buf = gpu.htod_copy(&input).unwrap();
        let total = exclusive_scan(&mut gpu, &mut buf).unwrap();
        let (expect, expect_total) = scan_host(&input);
        assert_eq!(buf.as_slice(), expect.as_slice());
        assert_eq!(total, expect_total);
    }

    #[test]
    fn empty_scan() {
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        let mut buf = gpu.alloc::<u32>(0).unwrap();
        assert_eq!(exclusive_scan(&mut gpu, &mut buf).unwrap(), 0);
    }

    #[test]
    fn single_element() {
        check(vec![7]);
    }

    #[test]
    fn single_tile_exact() {
        check((0..SCAN_TILE as u32).collect());
    }

    #[test]
    fn single_tile_partial() {
        check((0..100).map(|i| i * 3 + 1).collect());
    }

    #[test]
    fn two_tiles_partial() {
        check((0..700).map(|i| (i * 7919) % 13).collect());
    }

    #[test]
    fn three_levels_of_recursion() {
        // > SCAN_TILE^2 elements forces two recursive levels.
        let n = SCAN_TILE * SCAN_TILE + 1234;
        check((0..n as u32).map(|i| i % 5).collect());
    }

    #[test]
    fn all_zeros() {
        check(vec![0; 2000]);
    }

    #[test]
    fn wrapping_behaviour_matches_host_u32() {
        // Sums that overflow u32 wrap — in the buffer and in the total —
        // exactly like a device-side u32 scan.
        let input = vec![u32::MAX / 2; 8];
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        let mut buf = gpu.htod_copy(&input).unwrap();
        let total = exclusive_scan(&mut gpu, &mut buf).unwrap();
        let wrapped = input.iter().fold(0u32, |a, &x| a.wrapping_add(x));
        assert_eq!(total, wrapped as u64);
        let (expect, _) = scan_host(&input);
        assert_eq!(buf.as_slice(), expect.as_slice());
    }

    #[test]
    fn scan_charges_time_and_memory() {
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        let mut buf = gpu.htod_copy(&vec![1u32; 10_000]).unwrap();
        let before = gpu.elapsed_ms();
        exclusive_scan(&mut gpu, &mut buf).unwrap();
        assert!(gpu.elapsed_ms() > before);
        // Sums buffers are freed after the scan.
        assert_eq!(gpu.ledger().used(), buf.size_bytes());
        assert!(gpu.timeline().kernels_named("scan").count() >= 2);
    }
}
