//! A *modern* segmented-sort baseline (beyond the paper).
//!
//! The paper's comparison point is the tagged two-pass Thrust trick (STA)
//! because, in 2016, "no dedicated GPU algorithm for sorting large numbers
//! of arrays" shipped in the mainstream libraries. That changed: CUB's
//! `DeviceSegmentedSort`, moderngpu's segmented sort and bb_segsort all
//! solve exactly this problem. This module models the standard design for
//! the paper's segment sizes (arrays that fit in shared memory): **one
//! block per segment running a shared-memory block radix sort** — no
//! global temporaries at all, so its data-handling capacity is the full
//! device (even better than GPU-ArraySort's 1.1×).
//!
//! Cost anchor: `CostModel::modern_segsort_elem_cycles` (default 500
//! cycles/element/pass before warp folding) calibrates end-to-end
//! throughput to ≈1 G elements/s on a Kepler part — the ballpark
//! published for CUB/bb_segsort on segments of ~10³ keys. The experiment
//! `repro-beyond` uses this to show where the paper's contribution stands
//! against the technique that superseded it.

use gpu_sim::{AccessPattern, DeviceBuffer, DeviceSpec, Gpu, LaunchConfig, SimError, SimResult};
use serde::{Deserialize, Serialize};

use crate::key::RadixKey;

/// Threads per segment block.
pub const SEG_THREADS: u32 = 256;
/// Radix passes for 32-bit keys (8 bits per pass, in shared memory).
const SEG_PASSES: u64 = 4;

/// Report of one segmented-sort run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegSortStats {
    /// H2D upload.
    pub upload_ms: f64,
    /// The single kernel launch.
    pub kernel_ms: f64,
    /// D2H download.
    pub download_ms: f64,
    /// Peak device bytes (= the data; the sort is fully in-shared).
    pub peak_bytes: u64,
}

impl SegSortStats {
    /// Total simulated time.
    pub fn total_ms(&self) -> f64 {
        self.upload_ms + self.kernel_ms + self.download_ms
    }
}

/// Sorts every length-`array_len` segment of `data` ascending using the
/// block-radix segmented sort. Requires the segment to fit in a block's
/// shared memory (the paper's regime; 4000-float spectra fit easily).
pub fn segmented_sort<K: RadixKey>(
    gpu: &mut Gpu,
    data: &mut [K],
    array_len: usize,
) -> SimResult<SegSortStats> {
    if array_len == 0 || data.is_empty() || !data.len().is_multiple_of(array_len) {
        return Err(SimError::InvalidLaunch {
            reason: format!("bad batch: len {} with array_len {array_len}", data.len()),
        });
    }
    // Shared footprint: ping-pong segment buffers + digit counters.
    let elem = std::mem::size_of::<K>();
    let shared_need = (2 * array_len * elem + 256 * 4) as u32;
    if shared_need > gpu.spec().shared_mem_per_block {
        return Err(SimError::SharedMemOverflow {
            requested: shared_need,
            available: gpu.spec().shared_mem_per_block,
        });
    }
    let num_arrays = data.len() / array_len;

    let t0 = gpu.elapsed_ms();
    let dbuf = gpu.htod_copy(data)?;
    let t1 = gpu.elapsed_ms();

    run_kernel(gpu, &dbuf, num_arrays, array_len, shared_need)?;
    let t2 = gpu.elapsed_ms();
    let peak_bytes = gpu.ledger().peak();

    let mut dbuf = dbuf;
    gpu.dtoh_into(&mut dbuf, data)?;
    let t3 = gpu.elapsed_ms();

    Ok(SegSortStats {
        upload_ms: t1 - t0,
        kernel_ms: t2 - t1,
        download_ms: t3 - t2,
        peak_bytes,
    })
}

fn run_kernel<K: RadixKey>(
    gpu: &mut Gpu,
    data: &DeviceBuffer<K>,
    num_arrays: usize,
    array_len: usize,
    shared_need: u32,
) -> SimResult<()> {
    let dv = data.view();
    let elem_bytes = std::mem::size_of::<K>() as u32;
    let seg_cycles = gpu.cost_model().modern_segsort_elem_cycles;
    let cfg = LaunchConfig::grid(num_arrays as u32, SEG_THREADS).with_shared(shared_need);
    gpu.launch("modern_segmented_sort", cfg, move |block| {
        let i = block.block_idx() as usize;
        let base = i * array_len;
        let per_thread = (array_len as u64).div_ceil(SEG_THREADS as u64);
        block.threads(|t| {
            // Load segment coalesced into shared, run 4 radix passes of
            // shared-memory ranking + scatter, store back coalesced.
            t.charge_global(per_thread, elem_bytes, AccessPattern::Coalesced);
            t.charge_shared(per_thread);
            for _ in 0..SEG_PASSES {
                t.charge_shared(4 * per_thread);
                t.charge_alu(6 * per_thread);
                t.charge_atomic_shared(per_thread);
            }
            // Calibrated throughput anchor (see module docs).
            t.charge_baseline_cycles(seg_cycles * SEG_PASSES as f64 * per_thread as f64);
            t.charge_shared(per_thread);
            t.charge_global(per_thread, elem_bytes, AccessPattern::Coalesced);
            if t.tid == 0 {
                // Real data movement once per block: sort the segment by
                // the radix key order (bit order == total order).
                // SAFETY: block-exclusive segment.
                let seg = unsafe { dv.slice_mut(base, array_len) };
                seg.sort_unstable_by_key(|k| k.to_radix_bits());
            }
        });
    })?;
    Ok(())
}

/// Largest N of `array_len`-element f32 arrays the segmented sort handles
/// on `spec` — data only, no temporaries (its Table-1 column).
pub fn max_arrays(spec: &DeviceSpec, array_len: u64) -> u64 {
    spec.usable_mem_bytes() / (array_len * 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::tesla_k40c())
    }

    #[test]
    fn sorts_each_segment() {
        let mut g = gpu();
        let (num, n) = (50, 400);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut data: Vec<f32> = (0..num * n).map(|_| rng.gen_range(-1e6f32..1e6)).collect();
        let mut expect = data.clone();
        let stats = segmented_sort(&mut g, &mut data, n).unwrap();
        for seg in expect.chunks_mut(n) {
            seg.sort_by(f32::total_cmp);
        }
        assert_eq!(data, expect);
        assert!(stats.kernel_ms > 0.0);
    }

    #[test]
    fn no_global_temporaries() {
        let mut g = gpu();
        let (num, n) = (200, 1000);
        let mut data = vec![1.0f32; num * n];
        let stats = segmented_sort(&mut g, &mut data, n).unwrap();
        assert_eq!(
            stats.peak_bytes,
            (num * n * 4) as u64,
            "fully in-shared: peak = the data itself"
        );
    }

    #[test]
    fn u32_and_i32_keys_work() {
        let mut g = gpu();
        let mut du: Vec<u32> = (0..256).rev().collect();
        segmented_sort(&mut g, &mut du, 64).unwrap();
        assert!(du.chunks(64).all(|s| s.windows(2).all(|w| w[0] <= w[1])));
        let mut di: Vec<i32> = (-128..128).rev().collect();
        segmented_sort(&mut g, &mut di, 32).unwrap();
        assert!(di.chunks(32).all(|s| s.windows(2).all(|w| w[0] <= w[1])));
    }

    #[test]
    fn oversized_segment_is_rejected() {
        let mut g = gpu();
        let n = 10_000; // 2 × 40 KB ping-pong > 48 KB shared
        let mut data = vec![0.0f32; n];
        let err = segmented_sort(&mut g, &mut data, n).unwrap_err();
        assert!(matches!(err, SimError::SharedMemOverflow { .. }));
    }

    #[test]
    fn capacity_is_the_full_device() {
        let spec = DeviceSpec::tesla_k40c();
        let m = max_arrays(&spec, 1000);
        assert_eq!(m, spec.usable_mem_bytes() / 4000);
        // Strictly above GPU-ArraySort's ≈1.1×-overhead capacity.
        assert!(m > 2_681_916);
    }

    #[test]
    fn bad_shapes_rejected() {
        let mut g = gpu();
        let mut data = vec![0.0f32; 10];
        assert!(segmented_sort(&mut g, &mut data, 0).is_err());
        assert!(segmented_sort(&mut g, &mut data, 3).is_err());
        let mut empty: Vec<f32> = vec![];
        assert!(segmented_sort(&mut g, &mut empty, 4).is_err());
    }
}
