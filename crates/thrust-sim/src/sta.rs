//! STA — "Sorting using Tagged Approach", the paper's baseline (§7.1).
//!
//! The make-shift way to sort N arrays with a 1-D sorting library: tag every
//! element with its array index, flatten, then exploit the *stability* of
//! `stable_sort_by_key`:
//!
//! 1. build the tag array (`tags[i] = i / n`) on the device;
//! 2. stable-sort the **values**, carrying tags (paper's step III/IV);
//! 3. stable-sort by **tag**, carrying values — stability keeps each
//!    array's values in ascending order, so the segments come back sorted
//!    and in their original positions (paper's step V).
//!
//! The cost the paper charges this baseline is reproduced structurally: two
//! full radix sorts over all N·n elements, a tag array as large as the
//! data, and the radix sort's O(N) double buffers — the "about 3× more
//! memory" of §7.1 — all of it allocated on the device ledger so capacity
//! experiments (Table 1) hit the same wall the authors did.

use gpu_sim::{AccessPattern, DeviceBuffer, DeviceSpec, Gpu, LaunchConfig, SimResult};
use serde::{Deserialize, Serialize};

use crate::radix::{stable_sort_by_key, RADIX_TILE};

/// Threads per tagging block.
const TAG_THREADS: u32 = 256;

/// Byte-level memory plan for an STA run — what must fit on the device at
/// peak (during either radix sort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaMemoryPlan {
    /// The values being sorted: N·n·4 bytes.
    pub values_bytes: u64,
    /// The tag array: N·n·4 bytes (u32 tags).
    pub tags_bytes: u64,
    /// Radix double buffers (alternate values + alternate tags).
    pub alt_bytes: u64,
    /// Digit histogram + scan temporaries.
    pub hist_bytes: u64,
}

impl StaMemoryPlan {
    /// Builds the plan for `num_arrays` arrays of `array_len` f32 elements.
    pub fn new(num_arrays: u64, array_len: u64) -> Self {
        let elems = num_arrays * array_len;
        let values_bytes = elems * 4;
        let tags_bytes = elems * 4;
        let alt_bytes = values_bytes + tags_bytes;
        let tiles = elems.div_ceil(RADIX_TILE as u64);
        // hist itself plus the first-level scan sums buffer.
        let hist = 256 * tiles * 4;
        let hist_bytes = hist + (256 * tiles).div_ceil(crate::scan::SCAN_TILE as u64) * 4;
        Self {
            values_bytes,
            tags_bytes,
            alt_bytes,
            hist_bytes,
        }
    }

    /// Total peak bytes.
    pub fn total_bytes(&self) -> u64 {
        self.values_bytes + self.tags_bytes + self.alt_bytes + self.hist_bytes
    }

    /// Memory multiplier relative to the raw data (the paper's "about 3
    /// times more memory than may actually be required" — with the radix
    /// double buffers counted it is ≈ 4× the data, i.e. 3× *extra*).
    pub fn overhead_factor(&self) -> f64 {
        self.total_bytes() as f64 / self.values_bytes as f64
    }
}

/// Largest N (number of arrays of `array_len` floats) whose STA memory plan
/// fits on `spec` — one row of the paper's Table 1.
pub fn max_arrays(spec: &DeviceSpec, array_len: u64) -> u64 {
    let usable = spec.usable_mem_bytes();
    // The plan is monotone in N; binary search the boundary.
    let mut lo = 0u64;
    let mut hi = usable / (array_len * 4) + 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if StaMemoryPlan::new(mid, array_len).total_bytes() <= usable {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Timing breakdown of one STA run (simulated milliseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaStats {
    /// H2D upload of the values.
    pub upload_ms: f64,
    /// Tag-array construction kernel.
    pub tagging_ms: f64,
    /// First stable sort (values as keys, tags as payload).
    pub sort_by_value_ms: f64,
    /// Second stable sort (tags as keys, values as payload).
    pub sort_by_tag_ms: f64,
    /// D2H download of the sorted values.
    pub download_ms: f64,
    /// Peak device memory over the run.
    pub peak_bytes: u64,
}

impl StaStats {
    /// Total simulated time.
    pub fn total_ms(&self) -> f64 {
        self.upload_ms
            + self.tagging_ms
            + self.sort_by_value_ms
            + self.sort_by_tag_ms
            + self.download_ms
    }

    /// Device-side time only (no PCIe).
    pub fn kernel_ms(&self) -> f64 {
        self.tagging_ms + self.sort_by_value_ms + self.sort_by_tag_ms
    }
}

/// Sorts every length-`array_len` segment of `data` ascending, in place
/// (host-visible result), using the STA baseline on `gpu`.
pub fn sort_arrays(gpu: &mut Gpu, data: &mut [f32], array_len: usize) -> SimResult<StaStats> {
    assert!(array_len > 0, "array_len must be positive");
    assert!(
        data.len().is_multiple_of(array_len),
        "data length {} not a multiple of array_len {}",
        data.len(),
        array_len
    );
    let peak_before = gpu.ledger().peak();
    let t0 = gpu.elapsed_ms();

    // Step I–II: upload the flattened values and build the tag array.
    let span = gpu.begin_span("sta/upload");
    let mut values = gpu.htod_copy(data)?;
    gpu.end_span(span);
    let t_upload = gpu.elapsed_ms();

    let span = gpu.begin_span("sta/tagging");
    let mut tags: DeviceBuffer<u32> = gpu.alloc(data.len())?;
    tagging_kernel(gpu, &tags, data.len(), array_len)?;
    gpu.end_span(span);
    let t_tag = gpu.elapsed_ms();

    // Step III/IV: stable sort values (tags ride along)…
    let span = gpu.begin_span("sta/sort-by-value");
    stable_sort_by_key(gpu, &mut values, &mut tags)?;
    gpu.end_span(span);
    let t_sort1 = gpu.elapsed_ms();

    // Step V: …then stable sort by tag (values ride along); stability
    // restores array order with each segment internally sorted.
    let span = gpu.begin_span("sta/sort-by-tag");
    stable_sort_by_key(gpu, &mut tags, &mut values)?;
    gpu.end_span(span);
    let t_sort2 = gpu.elapsed_ms();

    let span = gpu.begin_span("sta/download");
    gpu.dtoh_into(&mut values, data)?;
    gpu.end_span(span);
    let t_down = gpu.elapsed_ms();

    Ok(StaStats {
        upload_ms: t_upload - t0,
        tagging_ms: t_tag - t_upload,
        sort_by_value_ms: t_sort1 - t_tag,
        sort_by_tag_ms: t_sort2 - t_sort1,
        download_ms: t_down - t_sort2,
        peak_bytes: gpu.ledger().peak().max(peak_before),
    })
}

/// Builds `tags[i] = i / array_len` on the device.
fn tagging_kernel(
    gpu: &mut Gpu,
    tags: &DeviceBuffer<u32>,
    len: usize,
    array_len: usize,
) -> SimResult<()> {
    let view = tags.view();
    let tile = TAG_THREADS as usize * 16;
    let blocks = len.div_ceil(tile) as u32;
    gpu.launch(
        "sta_tagging",
        LaunchConfig::grid(blocks, TAG_THREADS),
        |block| {
            let start = block.block_idx() as usize * tile;
            let tlen = tile.min(len - start);
            let per_thread = (tlen as u64).div_ceil(TAG_THREADS as u64);
            block.threads(|t| {
                // One integer divide + coalesced store per element.
                t.charge_alu(20 * per_thread);
                t.charge_global(per_thread, 4, AccessPattern::Coalesced);
                if t.tid == 0 {
                    // SAFETY: block-exclusive range of the tag buffer.
                    let out = unsafe { view.slice_mut(start, tlen) };
                    for (off, v) in out.iter_mut().enumerate() {
                        *v = ((start + off) / array_len) as u32;
                    }
                }
            });
        },
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::tesla_k40c())
    }

    #[test]
    fn sorts_each_segment_independently() {
        let mut g = gpu();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 64;
        let num = 50;
        let mut data: Vec<f32> = (0..n * num).map(|_| rng.gen_range(0.0f32..1e9)).collect();
        let mut expect = data.clone();
        let stats = sort_arrays(&mut g, &mut data, n).unwrap();
        for seg in expect.chunks_mut(n) {
            seg.sort_by(f32::total_cmp);
        }
        assert_eq!(data, expect);
        assert!(stats.total_ms() > 0.0);
        assert!(stats.sort_by_value_ms > 0.0 && stats.sort_by_tag_ms > 0.0);
    }

    #[test]
    fn single_array_degenerates_to_plain_sort() {
        let mut g = gpu();
        let mut data = vec![5.0f32, -1.0, 3.0, 2.0];
        sort_arrays(&mut g, &mut data, 4).unwrap();
        assert_eq!(data, vec![-1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn many_tiny_arrays() {
        let mut g = gpu();
        let mut data = vec![2.0f32, 1.0, 9.0, 3.0, 0.5, 0.1];
        sort_arrays(&mut g, &mut data, 2).unwrap();
        assert_eq!(data, vec![1.0, 2.0, 3.0, 9.0, 0.1, 0.5]);
    }

    #[test]
    fn negative_values_sort_correctly() {
        let mut g = gpu();
        let mut data = vec![-1.0f32, -5.0, 2.0, -0.0, 0.0, -2.5];
        sort_arrays(&mut g, &mut data, 3).unwrap();
        assert_eq!(data, vec![-5.0, -1.0, 2.0, -2.5, -0.0, 0.0]);
    }

    #[test]
    fn memory_plan_shows_4x_overhead() {
        let plan = StaMemoryPlan::new(1000, 1000);
        let f = plan.overhead_factor();
        assert!(
            (3.9..4.3).contains(&f),
            "overhead factor {f} should be ≈4× data"
        );
    }

    #[test]
    fn peak_memory_matches_plan_scale() {
        let mut g = gpu();
        let n = 256;
        let num = 400;
        let mut data: Vec<f32> = (0..n * num).map(|i| i as f32).collect();
        let stats = sort_arrays(&mut g, &mut data, n).unwrap();
        let plan = StaMemoryPlan::new(num as u64, n as u64);
        let ratio = stats.peak_bytes as f64 / plan.total_bytes() as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "measured peak {} vs planned {} (ratio {ratio})",
            stats.peak_bytes,
            plan.total_bytes()
        );
    }

    #[test]
    fn max_arrays_reproduces_table1_row_shape() {
        // Paper Table 1 on the K40c: STA handles ~0.7M arrays of 1000.
        let spec = DeviceSpec::tesla_k40c();
        let m = max_arrays(&spec, 1000);
        assert!(
            (500_000..900_000).contains(&m),
            "K40c STA capacity for n=1000 should be ≈0.7M, got {m}"
        );
        // Monotone in array size.
        assert!(max_arrays(&spec, 2000) < m);
        assert!(max_arrays(&spec, 4000) < max_arrays(&spec, 2000));
    }

    #[test]
    fn oom_beyond_capacity() {
        let mut g = Gpu::new(DeviceSpec::test_device()); // 60 MiB usable
        let n = 1000usize;
        let num = 4_000usize; // 16 MB data → ~64 MB plan: over budget
        let mut data = vec![0.0f32; n * num];
        let err = sort_arrays(&mut g, &mut data, n).unwrap_err();
        assert!(matches!(err, gpu_sim::SimError::OutOfMemory { .. }));
    }

    #[test]
    fn run_emits_phase_spans_covering_elapsed() {
        let mut g = gpu();
        let mut data = vec![3.0f32; 64 * 100];
        sort_arrays(&mut g, &mut data, 64).unwrap();
        let spans = &g.timeline().spans;
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "sta/upload",
                "sta/tagging",
                "sta/sort-by-value",
                "sta/sort-by-tag",
                "sta/download"
            ]
        );
        let total: f64 = spans.iter().map(|s| s.duration_ms()).sum();
        assert!((total - g.elapsed_ms()).abs() < 1e-6);
    }

    #[test]
    fn timing_scales_with_data() {
        let mut g = gpu();
        let mut small = vec![1.0f32; 64 * 100];
        let s1 = sort_arrays(&mut g, &mut small, 64).unwrap();
        let mut large = vec![1.0f32; 64 * 1000];
        let s2 = sort_arrays(&mut g, &mut large, 64).unwrap();
        assert!(s2.kernel_ms() > s1.kernel_ms());
    }
}
