//! Head-to-head on identical data and device: GPU-ArraySort, the paper's
//! STA baseline, the m-way merge variant the paper dismissed, and the
//! modern (CUB-class) segmented sort that superseded all of them —
//! time and peak memory, the two axes of the paper's evaluation.
//!
//! ```text
//! cargo run --release --example compare_sta [num_arrays] [array_len]
//! ```

use array_sort::{ArraySortConfig, GpuArraySort};
use datagen::ArrayBatch;
use gpu_sim::{DeviceSpec, Gpu};

struct Row {
    label: &'static str,
    total_ms: f64,
    kernel_ms: f64,
    peak_bytes: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let num_arrays: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let array_len: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1_000);

    let batch = ArrayBatch::paper_uniform(99, num_arrays, array_len);
    let data_mb = batch.data_bytes() as f64 / 1048576.0;
    println!(
        "workload: {num_arrays} arrays × {array_len} floats ({data_mb:.1} MB), uniform [0, 2³¹)\n"
    );

    let mut rows = Vec::new();
    let mut reference: Option<ArrayBatch> = None;
    let mut check = |label, out: ArrayBatch, total_ms, kernel_ms, peak| {
        assert!(out.is_each_array_sorted(), "{label} failed to sort");
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(r, &out, "{label} disagrees"),
        }
        rows.push(Row {
            label,
            total_ms,
            kernel_ms,
            peak_bytes: peak,
        });
    };

    // GPU-ArraySort (the paper).
    let mut d = batch.clone();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let s = GpuArraySort::new()
        .sort(&mut gpu, d.as_flat_mut(), array_len)
        .unwrap();
    check(
        "GPU-ArraySort (paper)",
        d,
        s.total_ms(),
        s.kernel_ms(),
        s.peak_bytes,
    );

    // STA (the paper's baseline).
    let mut d = batch.clone();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let s = thrust_sim::sta::sort_arrays(&mut gpu, d.as_flat_mut(), array_len).unwrap();
    check(
        "STA (Thrust tagged)",
        d,
        s.total_ms(),
        s.kernel_ms(),
        s.peak_bytes,
    );

    // m-way merge variant (the design the paper dismissed in §4.1).
    let mut d = batch.clone();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let s = array_sort::merge_sort_arrays(
        &mut gpu,
        d.as_flat_mut(),
        array_len,
        &ArraySortConfig::default(),
    )
    .unwrap();
    check(
        "m-way merge variant",
        d,
        s.total_ms(),
        s.kernel_ms(),
        s.peak_bytes,
    );

    // Modern segmented sort (post-2016 state of the art).
    let mut d = batch;
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let s = thrust_sim::segmented_sort(&mut gpu, d.as_flat_mut(), array_len).unwrap();
    check(
        "modern segmented sort",
        d,
        s.total_ms(),
        s.kernel_ms,
        s.peak_bytes,
    );

    let best_total = rows
        .iter()
        .map(|r| r.total_ms)
        .fold(f64::INFINITY, f64::min);
    println!(
        "{:<24} {:>12} {:>12} {:>11} {:>9}",
        "algorithm", "total (ms)", "kernel (ms)", "peak (MB)", "vs best"
    );
    for r in &rows {
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>11.1} {:>8.1}×",
            r.label,
            r.total_ms,
            r.kernel_ms,
            r.peak_bytes as f64 / 1048576.0,
            r.total_ms / best_total
        );
    }
    println!(
        "\nAll four produce bitwise-identical output. The paper's comparison is the\n\
         top two rows; the bottom two are this reproduction's extensions (see\n\
         EXPERIMENTS.md, ablation D and beyond-paper B1)."
    );
}
