//! Explore how GPU-ArraySort scales across simulated devices: run the
//! same workload on the paper's Tesla K40c, the smaller K20, and a toy
//! device, and print times, capacities and SM balance.
//!
//! ```text
//! cargo run --release --example device_explorer
//! ```

use array_sort::GpuArraySort;
use datagen::ArrayBatch;
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    let (num_arrays, array_len) = (5_000, 1_000);
    let batch = ArrayBatch::paper_uniform(3, num_arrays, array_len);
    let sorter = GpuArraySort::new();

    println!(
        "workload: {num_arrays} arrays × {array_len} floats ({} MB)\n",
        batch.data_bytes() / 1048576
    );
    println!(
        "{:<14} {:>5} {:>9} {:>12} {:>14} {:>12}",
        "device", "SMs", "mem (MB)", "kernel (ms)", "capacity (N)", "SM balance"
    );

    for spec in [
        DeviceSpec::tesla_k40c(),
        DeviceSpec::tesla_k20(),
        DeviceSpec::test_device(),
    ] {
        let mut gpu = Gpu::new(spec.clone());
        let mut data = batch.clone();
        let stats = sorter
            .sort(&mut gpu, data.as_flat_mut(), array_len)
            .expect("5k arrays fit every preset");
        assert!(data.is_each_array_sorted());

        // Max arrays of this size the device could hold (its Table 1 row).
        let capacity = sorter.max_arrays(&spec, array_len);

        // Worst SM imbalance across the three phase launches.
        let imbalance = gpu
            .timeline()
            .kernels
            .iter()
            .map(|k| k.sm_imbalance)
            .fold(1.0f64, f64::max);

        println!(
            "{:<14} {:>5} {:>9} {:>12.2} {:>14} {:>11.3}",
            spec.name,
            spec.sm_count,
            spec.global_mem_bytes / 1048576,
            stats.kernel_ms(),
            capacity,
            imbalance
        );
    }

    println!(
        "\nFewer SMs ⇒ proportionally longer kernels (the block-per-array grid\n\
         saturates any SM count); less memory ⇒ a proportionally smaller Table-1\n\
         capacity. Near-1.0 SM balance is the paper's load-balancing claim."
    );
}
