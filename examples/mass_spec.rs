//! The paper's motivating domain: proteomics. Generate a run of synthetic
//! mass spectra, sort every spectrum's peaks by intensity and by m/z on
//! the simulated GPU, and compare against the CPU.
//!
//! ```text
//! cargo run --release --example mass_spec
//! ```

use array_sort::{cpu_ref, GpuArraySort};
use datagen::{generate_spectra, spectra_to_batch, MassSpecConfig, SpectrumKey};
use gpu_sim::{DeviceSpec, Gpu};
use std::time::Instant;

fn main() {
    // A (small) mass-spectrometry run: the paper's datasets have up to
    // ~4000 peaks per spectrum including noise (§4).
    let cfg = MassSpecConfig {
        peaks_per_spectrum: 2000,
        ..Default::default()
    };
    let num_spectra = 5_000;
    let spectra = generate_spectra(0x50EC, num_spectra, &cfg);
    println!(
        "generated {} spectra × {} peaks (noise fraction {:.0}%)",
        spectra.len(),
        cfg.peaks_per_spectrum,
        cfg.noise_fraction * 100.0
    );

    for (key, label) in [
        (SpectrumKey::Intensity, "intensity"),
        (SpectrumKey::Mz, "m/z"),
    ] {
        // Pack the chosen peak attribute into the flat batch layout.
        let mut batch = spectra_to_batch(&spectra, key, cfg.peaks_per_spectrum);

        // GPU (simulated) sort.
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        let stats = GpuArraySort::new()
            .sort(&mut gpu, batch.as_flat_mut(), cfg.peaks_per_spectrum)
            .expect("spectra fit on the K40c");
        assert!(batch.is_each_array_sorted());

        // CPU reference for a wall-clock comparison point.
        let mut cpu_batch = spectra_to_batch(&spectra, key, cfg.peaks_per_spectrum);
        let t = Instant::now();
        cpu_ref::sort_arrays_par(cpu_batch.as_flat_mut(), cfg.peaks_per_spectrum);
        let cpu_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(batch, cpu_batch, "GPU and CPU orders agree");

        println!(
            "\nsort by {label:9}: simulated GPU {:8.2} ms (kernels {:.2} ms) | host CPU (rayon) {:8.2} ms",
            stats.total_ms(),
            stats.kernel_ms(),
            cpu_ms
        );
        println!(
            "  buckets/spectrum {}, bucket imbalance {:.2} (skewed {} values vs. the paper's uniform floats)",
            stats.geometry.buckets_per_array, stats.balance.imbalance, label
        );
    }

    println!(
        "\nNote: MS intensities are long-tailed, so bucket balance is worse than on\n\
         the paper's uniform data — exactly the regime the 10% regular sampling\n\
         (ablation B, `repro-ablations --sampling-sweep`) is about."
    );
}
