//! The paper's §9 future work, working: sort a dataset larger than the
//! device's global memory by chunking with double-buffered transfer
//! overlap. Runs on a deliberately tiny simulated device (64 MB) so the
//! overflow is visible in seconds.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use array_sort::{cpu_ref, sort_out_of_core, GpuArraySort};
use datagen::ArrayBatch;
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    let spec = DeviceSpec::test_device();
    let mut gpu = Gpu::new(spec.clone());

    // 160 MB of arrays against a 64 MB device.
    let (num_arrays, array_len) = (40_000, 1_000);
    let mut batch = ArrayBatch::paper_uniform(7, num_arrays, array_len);
    println!(
        "dataset {} MB vs device '{}' {} MB ({} MB usable)\n",
        batch.data_bytes() / 1048576,
        spec.name,
        spec.global_mem_bytes / 1048576,
        spec.usable_mem_bytes() / 1048576
    );

    let sorter = GpuArraySort::new();
    let stats = sort_out_of_core(&sorter, &mut gpu, batch.as_flat_mut(), array_len)
        .expect("chunked sort always fits");

    assert!(cpu_ref::is_each_sorted(batch.as_flat(), array_len));
    println!(
        "chunks            : {} × {} arrays",
        stats.chunks.len(),
        stats.chunk_arrays
    );
    for (i, c) in stats.chunks.iter().enumerate() {
        println!(
            "  chunk {i}: upload {:7.2} ms | kernels {:7.2} ms | download {:7.2} ms",
            c.upload_ms, c.kernel_ms, c.download_ms
        );
    }
    println!(
        "\nserial schedule   : {:8.2} ms (one stream, no overlap)",
        stats.serial_ms
    );
    println!(
        "pipelined schedule: {:8.2} ms (double-buffered)",
        stats.pipelined_ms
    );
    println!(
        "overlap saves     : {:8.1}%",
        stats.overlap_saving() * 100.0
    );
    println!(
        "\npeak device memory: {:.1} MB of {:.1} MB usable — never exceeded",
        gpu.ledger().peak() as f64 / 1048576.0,
        gpu.ledger().capacity() as f64 / 1048576.0
    );
}
