//! Another domain from the paper's introduction: particle-in-cell codes
//! ("fine-sorting one-dimensional particle-in-cell algorithm … on a
//! graphics processing unit", the paper's reference [8]). Particles are
//! binned into spatial cells; each step the per-cell particle lists must
//! be re-sorted by position so neighbor interactions stream linearly.
//!
//! This example runs a few simulation steps: particles drift (their
//! positions perturb slightly), and the per-cell sort is re-established
//! each step. Because the lists stay *nearly sorted* between steps, the
//! adaptive insertion sort of Phase 3 gets cheaper after the first step —
//! an effect the simulated cycle counts expose.
//!
//! ```text
//! cargo run --release --example particle_cells
//! ```

use array_sort::GpuArraySort;
use datagen::rng_for;
use gpu_sim::{DeviceSpec, Gpu};
use rand::Rng;

fn main() {
    let cells = 5_000usize;
    let particles_per_cell = 512usize;
    let mut rng = rng_for(0x9A87, 0);

    // Initial state: uniformly random positions within each cell.
    let mut positions: Vec<f32> = (0..cells * particles_per_cell)
        .map(|i| {
            let cell = (i / particles_per_cell) as f32;
            cell + rng.gen_range(0.0f32..1.0)
        })
        .collect();

    println!(
        "{cells} cells × {particles_per_cell} particles = {} particles, {} MB\n",
        cells * particles_per_cell,
        positions.len() * 4 / 1048576
    );
    println!(
        "{:<6} {:>14} {:>14} {:>14}",
        "step", "phase 3 (ms)", "kernels (ms)", "disorder"
    );

    let sorter = GpuArraySort::new();
    for step in 0..5 {
        // Measure disorder before sorting (adjacent inversions).
        let inversions: usize = positions
            .chunks(particles_per_cell)
            .map(|c| c.windows(2).filter(|w| w[0] > w[1]).count())
            .sum();

        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        let stats = sorter
            .sort(&mut gpu, &mut positions, particles_per_cell)
            .expect("cells fit on the device");
        println!(
            "{:<6} {:>14.3} {:>14.3} {:>14}",
            step,
            stats.phase3_ms,
            stats.kernel_ms(),
            inversions
        );

        // Drift: small random velocity kick; most particles keep their
        // relative order, so the next step's input is nearly sorted.
        for p in positions.iter_mut() {
            *p += rng.gen_range(-0.0005f32..0.0005);
        }
    }

    println!(
        "\nStep 0 sorts random lists; steps 1+ sort nearly-sorted lists, and\n\
         because Phase 3 charges the insertion sort's exact comparison counts,\n\
         its cost tracks the disorder — the adaptivity that makes\n\
         GPU-ArraySort attractive for iterative PIC-style workloads."
    );
}
