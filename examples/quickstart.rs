//! Quickstart: sort 10 000 arrays of 1 000 floats on the simulated Tesla
//! K40c and print the per-phase breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use array_sort::GpuArraySort;
use datagen::ArrayBatch;
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    // A batch shaped like the paper's workload: N arrays × n elements,
    // uniform floats in [0, 2^31 − 1).
    let (num_arrays, array_len) = (10_000, 1_000);
    let mut batch = ArrayBatch::paper_uniform(1, num_arrays, array_len);
    println!(
        "batch: {} arrays × {} floats = {} MB",
        num_arrays,
        array_len,
        batch.data_bytes() / (1024 * 1024)
    );

    // The device the paper evaluated on.
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    println!(
        "device: {} ({} SMs, {} MB)\n",
        gpu.spec().name,
        gpu.spec().sm_count,
        gpu.spec().global_mem_bytes / (1024 * 1024)
    );

    let sorter = GpuArraySort::new(); // paper defaults: 20/bucket, 10% sampling
    let stats = sorter
        .sort(&mut gpu, batch.as_flat_mut(), array_len)
        .expect("fits on the K40c");

    assert!(
        batch.is_each_array_sorted(),
        "every array must come back sorted"
    );

    println!("upload    : {:8.3} ms", stats.upload_ms);
    println!(
        "phase 1   : {:8.3} ms  (splitter selection, {:?})",
        stats.phase1_ms, stats.phase1_strategy
    );
    println!(
        "phase 2   : {:8.3} ms  (bucketing, {:?} staging)",
        stats.phase2_ms, stats.staging
    );
    println!(
        "phase 3   : {:8.3} ms  (per-bucket insertion sort)",
        stats.phase3_ms
    );
    println!("download  : {:8.3} ms", stats.download_ms);
    println!("total     : {:8.3} ms (simulated)", stats.total_ms());
    println!();
    println!(
        "memory    : peak {:.1} MB for {:.1} MB of data ({:.2}× — the in-place story)",
        stats.peak_bytes as f64 / 1048576.0,
        batch.data_bytes() as f64 / 1048576.0,
        stats.peak_bytes as f64 / batch.data_bytes() as f64
    );
    println!(
        "buckets   : {} per array, sizes min {} / mean {:.1} / max {} (imbalance {:.2})",
        stats.geometry.buckets_per_array,
        stats.balance.min,
        stats.balance.mean,
        stats.balance.max,
        stats.balance.imbalance
    );
}
