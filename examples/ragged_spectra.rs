//! Real-shaped proteomics workload: variable-length spectra (no padding),
//! sorted with the ragged extension, plus peak (intensity, m/z) *pairs*
//! sorted with the key–value extension — the two things the paper's
//! fixed-size evaluation leaves out but its application section needs.
//!
//! ```text
//! cargo run --release --example ragged_spectra
//! ```

use array_sort::{sort_pairs, sort_ragged, GpuArraySort};
use datagen::{generate_spectra, spectra_to_batch, spectra_to_ragged, MassSpecConfig, SpectrumKey};
use gpu_sim::{DeviceSpec, Gpu};

fn main() {
    // Spectra with a realistic spread of peak counts.
    let cfg = MassSpecConfig {
        peaks_per_spectrum: 1500,
        ..Default::default()
    };
    let mut spectra = generate_spectra(0xA77, 4_000, &cfg);
    // Make them ragged: truncate each spectrum to a pseudo-random length.
    for (i, s) in spectra.iter_mut().enumerate() {
        let keep = 300 + (i * 2654435761) % 1200;
        s.mz.truncate(keep);
        s.intensity.truncate(keep);
    }
    let total_peaks: usize = spectra.iter().map(|s| s.num_peaks()).sum();
    println!(
        "{} spectra, {} peaks total, lengths {}..{}",
        spectra.len(),
        total_peaks,
        spectra.iter().map(|s| s.num_peaks()).min().unwrap(),
        spectra.iter().map(|s| s.num_peaks()).max().unwrap()
    );

    // --- Ragged sort (CSR, no padding) vs padded fixed-size sort.
    let mut ragged = spectra_to_ragged(&spectra, SpectrumKey::Mz);
    let ragged_bytes = ragged.total_elems() * 4;
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let offsets = ragged.offsets().to_vec();
    let rstats = sort_ragged(
        &GpuArraySort::new(),
        &mut gpu,
        ragged.as_flat_mut(),
        &offsets,
    )
    .expect("ragged batch fits");
    assert!(ragged.is_each_array_sorted());

    let max_len = spectra.iter().map(|s| s.num_peaks()).max().unwrap();
    let mut padded = spectra_to_batch(&spectra, SpectrumKey::Mz, max_len);
    let padded_bytes = padded.total_elems() * 4;
    let mut gpu2 = Gpu::new(DeviceSpec::tesla_k40c());
    let pstats = GpuArraySort::new()
        .sort(&mut gpu2, padded.as_flat_mut(), max_len)
        .expect("padded batch fits");
    assert!(padded.is_each_array_sorted());

    println!("\n== sort each spectrum by m/z ==");
    println!(
        "ragged (CSR)   : {:8.2} ms simulated, {:6.1} MB data, SM imbalance {:.3}",
        rstats.total_ms(),
        ragged_bytes as f64 / 1048576.0,
        rstats.worst_sm_imbalance
    );
    println!(
        "padded to {max_len:4}: {:8.2} ms simulated, {:6.1} MB data ({:.0}% wasted on padding)",
        pstats.total_ms(),
        padded_bytes as f64 / 1048576.0,
        100.0 * (1.0 - ragged_bytes as f64 / padded_bytes as f64)
    );

    // --- Pair sort: order peaks by intensity, carry m/z along (top-k
    // peak-picking needs exactly this order).
    let n = 1024;
    let trimmed: Vec<_> = spectra.iter().take(2_000).collect();
    let mut intensity = Vec::with_capacity(trimmed.len() * n);
    let mut mz = Vec::with_capacity(trimmed.len() * n);
    for s in &trimmed {
        for k in 0..n {
            intensity.push(s.intensity.get(k).copied().unwrap_or(0.0));
            mz.push(s.mz.get(k).copied().unwrap_or(0.0));
        }
    }
    let mut gpu3 = Gpu::new(DeviceSpec::tesla_k40c());
    let pr =
        sort_pairs(&GpuArraySort::new(), &mut gpu3, &mut intensity, &mut mz, n).expect("pairs fit");
    println!("\n== sort (intensity, m/z) pairs by intensity ==");
    println!(
        "{} spectra × {n} peaks: {:.2} ms simulated ({:?} staging), peak mem {:.1} MB",
        trimmed.len(),
        pr.total_ms(),
        pr.staging,
        pr.peak_bytes as f64 / 1048576.0
    );
    // The strongest peak of each spectrum is now at the segment's end.
    let strongest_mz = mz[n - 1];
    let strongest_int = intensity[n - 1];
    println!("spectrum 0 strongest peak: intensity {strongest_int:.1} at m/z {strongest_mz:.2}");
}
