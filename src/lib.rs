//! # gpu-array-sort-repro — umbrella crate
//!
//! Re-exports the whole reproduction suite for GPU-ArraySort (Awan &
//! Saeed, ICPP 2016) so examples and integration tests can reach every
//! layer through one dependency:
//!
//! * [`gpu_sim`] — the simulated SIMT device (the hardware substitute);
//! * [`thrust_sim`] — scan / stable radix sort / the STA baseline;
//! * [`array_sort`] — the paper's contribution (three-phase in-place
//!   batch sort, complexity model, out-of-core extension);
//! * [`datagen`] — reproducible workloads, including synthetic
//!   mass-spectrometry spectra.
//!
//! See the workspace README for the map and `examples/` for runnable
//! entry points.

pub use array_sort;
pub use datagen;
pub use gpu_sim;
pub use thrust_sim;

/// The device every paper experiment runs on.
pub fn paper_device() -> gpu_sim::Gpu {
    gpu_sim::Gpu::new(gpu_sim::DeviceSpec::tesla_k40c())
}
