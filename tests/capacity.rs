//! Capacity (Table 1) integration: both algorithms against the device
//! memory wall, exercised on the small test device so allocations stay
//! laptop-sized, plus the analytic K40c rows the paper reports.

use array_sort::GpuArraySort;
use datagen::ArrayBatch;
use gpu_sim::{DeviceSpec, Gpu, SimError};

#[test]
fn k40c_capacity_ratio_matches_paper_regime() {
    let spec = DeviceSpec::tesla_k40c();
    let sorter = GpuArraySort::new();
    for n in [1000usize, 2000, 3000, 4000] {
        let gas = sorter.max_arrays(&spec, n);
        let sta = thrust_sim::sta::max_arrays(&spec, n as u64);
        let ratio = gas as f64 / sta as f64;
        assert!(
            (2.5..4.5).contains(&ratio),
            "paper's ≈3× capacity advantage, n={n}: {gas} vs {sta} ({ratio:.2}×)"
        );
    }
    // The paper's marquee number: ~2 million arrays of 1000 floats.
    let gas_1000 = sorter.max_arrays(&spec, 1000);
    assert!(
        gas_1000 >= 2_000_000,
        "K40c holds ≥2M arrays of 1000 (paper Table 1), got {gas_1000}"
    );
}

#[test]
fn gas_sorts_at_90_percent_of_its_capacity_on_small_device() {
    let spec = DeviceSpec::test_device();
    let sorter = GpuArraySort::new();
    let n = 500;
    let max = sorter.max_arrays(&spec, n) as usize;
    let num = max * 9 / 10;
    let mut batch = ArrayBatch::paper_uniform(5, num, n);
    let mut gpu = Gpu::new(spec);
    sorter
        .sort(&mut gpu, batch.as_flat_mut(), n)
        .expect("90% of capacity must fit");
    assert!(batch.is_each_array_sorted());
}

#[test]
fn gas_oom_just_above_capacity_on_small_device() {
    let spec = DeviceSpec::test_device();
    let sorter = GpuArraySort::new();
    let n = 500;
    let max = sorter.max_arrays(&spec, n) as usize;
    let num = max + max / 10;
    let mut batch = ArrayBatch::paper_uniform(6, num, n);
    let mut gpu = Gpu::new(spec);
    let err = sorter.sort(&mut gpu, batch.as_flat_mut(), n).unwrap_err();
    assert!(matches!(err, SimError::OutOfMemory { .. }));
}

#[test]
fn sta_capacity_is_well_below_gas_on_small_device() {
    let spec = DeviceSpec::test_device();
    let sorter = GpuArraySort::new();
    let n = 500;
    let gas_max = sorter.max_arrays(&spec, n) as usize;
    let sta_max = thrust_sim::sta::max_arrays(&spec, n as u64) as usize;
    assert!(gas_max as f64 / sta_max as f64 > 2.5);

    // STA succeeds at its own capacity…
    let mut batch = ArrayBatch::paper_uniform(7, sta_max * 9 / 10, n);
    let mut gpu = Gpu::new(spec.clone());
    thrust_sim::sta::sort_arrays(&mut gpu, batch.as_flat_mut(), n).expect("STA at 90%");
    assert!(batch.is_each_array_sorted());

    // …and fails at GAS's operating point (the paper's Table 1 story).
    let mut batch = ArrayBatch::paper_uniform(8, gas_max * 9 / 10, n);
    let mut gpu = Gpu::new(spec);
    let err = thrust_sim::sta::sort_arrays(&mut gpu, batch.as_flat_mut(), n).unwrap_err();
    assert!(matches!(err, SimError::OutOfMemory { .. }));
}

#[test]
fn failed_runs_release_all_memory() {
    // OOM mid-pipeline must not leak ledger bytes (RAII on DeviceBuffer).
    let spec = DeviceSpec::test_device();
    let mut gpu = Gpu::new(spec);
    let sorter = GpuArraySort::new();
    let n = 500;
    let max = sorter.max_arrays(gpu.spec(), n) as usize;
    let mut batch = ArrayBatch::paper_uniform(9, max + max / 10, n);
    let _ = sorter.sort(&mut gpu, batch.as_flat_mut(), n).unwrap_err();
    assert_eq!(
        gpu.ledger().used(),
        0,
        "no leaked device allocations after OOM"
    );
}

#[test]
fn out_of_core_rescues_over_capacity_workloads() {
    // The same workload that OOMs in-core sorts fine out-of-core.
    let spec = DeviceSpec::test_device();
    let sorter = GpuArraySort::new();
    let n = 500;
    let max = sorter.max_arrays(&spec, n) as usize;
    let num = max + max / 2;
    let mut batch = ArrayBatch::paper_uniform(10, num, n);

    let mut gpu = Gpu::new(spec.clone());
    assert!(sorter.sort(&mut gpu, batch.as_flat_mut(), n).is_err());

    let mut gpu = Gpu::new(spec);
    let stats = array_sort::sort_out_of_core(&sorter, &mut gpu, batch.as_flat_mut(), n)
        .expect("out-of-core handles it");
    assert!(stats.chunks.len() >= 2);
    assert!(batch.is_each_array_sorted());
}
