//! Cross-crate integration: GPU-ArraySort, the STA baseline and the CPU
//! oracle must agree element-for-element on the same inputs, across
//! distributions, shapes and devices.

use array_sort::{cpu_ref, ArraySortConfig, GpuArraySort};
use datagen::{Arrangement, ArrayBatch, Distribution};
use gpu_sim::{DeviceSpec, Gpu};

fn sorted_by_all_three(batch: &ArrayBatch) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let n = batch.array_len();

    let mut gas = batch.clone().into_flat();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    GpuArraySort::new()
        .sort(&mut gpu, &mut gas, n)
        .expect("GAS run");

    let mut sta = batch.clone().into_flat();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    thrust_sim::sta::sort_arrays(&mut gpu, &mut sta, n).expect("STA run");

    let mut cpu = batch.clone().into_flat();
    cpu_ref::sort_arrays_seq(&mut cpu, n);

    (gas, sta, cpu)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn all_three_agree_on_uniform_data() {
    let batch = ArrayBatch::paper_uniform(1, 200, 333);
    let (gas, sta, cpu) = sorted_by_all_three(&batch);
    assert_eq!(bits(&gas), bits(&cpu), "GAS vs CPU");
    assert_eq!(bits(&sta), bits(&cpu), "STA vs CPU");
}

#[test]
fn all_three_agree_across_distributions() {
    for (i, dist) in [
        Distribution::Normal {
            mean: 0.0,
            std_dev: 1000.0,
        },
        Distribution::Exponential { lambda: 0.01 },
        Distribution::Pareto {
            scale: 1.0,
            alpha: 1.2,
        },
        Distribution::Constant(42.0),
        Distribution::FewDistinct { k: 3 },
    ]
    .iter()
    .enumerate()
    {
        let batch = ArrayBatch::generate(100 + i as u64, 50, 128, *dist, Arrangement::Shuffled);
        let (gas, sta, cpu) = sorted_by_all_three(&batch);
        assert_eq!(bits(&gas), bits(&cpu), "GAS vs CPU for {dist:?}");
        assert_eq!(bits(&sta), bits(&cpu), "STA vs CPU for {dist:?}");
    }
}

#[test]
fn all_three_agree_on_presorted_shapes() {
    for arrangement in [
        Arrangement::Sorted,
        Arrangement::Reversed,
        Arrangement::NearlySorted { swaps: 5 },
    ] {
        let batch = ArrayBatch::generate(9, 40, 200, Distribution::PaperUniform, arrangement);
        let (gas, sta, cpu) = sorted_by_all_three(&batch);
        assert_eq!(bits(&gas), bits(&cpu), "GAS vs CPU for {arrangement:?}");
        assert_eq!(bits(&sta), bits(&cpu), "STA vs CPU for {arrangement:?}");
    }
}

#[test]
fn awkward_shapes_sort() {
    // Array sizes around bucket boundaries, tile boundaries, tiny arrays.
    for &(num, n) in &[
        (1usize, 1usize),
        (1, 19),
        (3, 20),
        (7, 21),
        (513, 39),
        (11, 4096),
        (2, 4097),
    ] {
        let batch = ArrayBatch::paper_uniform(n as u64, num, n);
        let (gas, sta, cpu) = sorted_by_all_three(&batch);
        assert_eq!(bits(&gas), bits(&cpu), "GAS {num}×{n}");
        assert_eq!(bits(&sta), bits(&cpu), "STA {num}×{n}");
    }
}

#[test]
fn simulated_timing_is_deterministic_across_runs() {
    let run = || {
        let batch = ArrayBatch::paper_uniform(5, 300, 500);
        let mut data = batch.into_flat();
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        let stats = GpuArraySort::new().sort(&mut gpu, &mut data, 500).unwrap();
        (
            stats.total_ms(),
            gpu.timeline()
                .kernels
                .iter()
                .map(|k| k.cycles)
                .collect::<Vec<_>>(),
        )
    };
    let (t1, c1) = run();
    let (t2, c2) = run();
    assert_eq!(c1, c2, "cycle counts must not depend on host scheduling");
    assert_eq!(t1, t2);
}

#[test]
fn gas_wins_time_and_memory_on_paper_workload() {
    let n = 1000;
    let batch = ArrayBatch::paper_uniform(2, 2_000, n);

    let mut gas_data = batch.clone().into_flat();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let gas = GpuArraySort::new()
        .sort(&mut gpu, &mut gas_data, n)
        .unwrap();

    let mut sta_data = batch.into_flat();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let sta = thrust_sim::sta::sort_arrays(&mut gpu, &mut sta_data, n).unwrap();

    assert!(
        sta.total_ms() / gas.total_ms() > 2.0,
        "paper's headline: GAS several× faster (got {:.2}×)",
        sta.total_ms() / gas.total_ms()
    );
    assert!(
        sta.peak_bytes as f64 / gas.peak_bytes as f64 > 2.5,
        "paper's memory claim: STA ≈3× the footprint (got {:.2}×)",
        sta.peak_bytes as f64 / gas.peak_bytes as f64
    );
}

#[test]
fn non_default_configs_still_sort() {
    let n = 300;
    for cfg in [
        ArraySortConfig {
            target_bucket_size: 7,
            ..Default::default()
        },
        ArraySortConfig {
            sampling_rate: 0.5,
            ..Default::default()
        },
        ArraySortConfig {
            threads_per_bucket: 2,
            ..Default::default()
        },
        ArraySortConfig {
            shared_staging: false,
            ..Default::default()
        },
    ] {
        let batch = ArrayBatch::paper_uniform(21, 60, n);
        let mut data = batch.into_flat();
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        GpuArraySort::with_config(cfg.clone())
            .unwrap()
            .sort(&mut gpu, &mut data, n)
            .unwrap_or_else(|e| panic!("config {cfg:?} failed: {e}"));
        assert!(
            cpu_ref::is_each_sorted(&data, n),
            "config {cfg:?} output unsorted"
        );
    }
}

#[test]
fn umbrella_crate_reexports_work() {
    let mut gpu = gpu_array_sort_repro::paper_device();
    let mut data = vec![3.0f32, 1.0, 2.0, 6.0, 5.0, 4.0];
    gpu_array_sort_repro::array_sort::GpuArraySort::new()
        .sort(&mut gpu, &mut data, 3)
        .unwrap();
    assert_eq!(data, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
}
