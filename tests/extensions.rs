//! Cross-crate integration of the extension surfaces: pairs, ragged
//! segments, the modern segmented-sort baseline and streams — all against
//! each other and the CPU oracle.

use array_sort::{sort_pairs, sort_ragged, GpuArraySort};
use datagen::{generate_spectra, spectra_to_ragged, MassSpecConfig, RaggedBatch, SpectrumKey};
use gpu_sim::{DeviceSpec, Gpu};

#[test]
fn pair_sort_agrees_with_sta_pair_semantics() {
    // STA's stable_sort_by_key on a single segment is a reference pair
    // sorter; our three-phase pair pipeline must produce the same stable
    // result per array.
    let (num, n) = (30usize, 200usize);
    let keys: Vec<f32> = (0..num * n).map(|i| ((i * 37) % 50) as f32).collect();
    let vals: Vec<u32> = (0..(num * n) as u32).collect();

    let mut gk = keys.clone();
    let mut gv = vals.clone();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    sort_pairs(&GpuArraySort::new(), &mut gpu, &mut gk, &mut gv, n).unwrap();

    // Reference: per segment, radix stable_sort_by_key on the device.
    let mut rk = keys;
    let mut rv = vals;
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    for i in 0..num {
        let mut kbuf = gpu.htod_copy(&rk[i * n..(i + 1) * n]).unwrap();
        let mut vbuf = gpu.htod_copy(&rv[i * n..(i + 1) * n]).unwrap();
        thrust_sim::stable_sort_by_key(&mut gpu, &mut kbuf, &mut vbuf).unwrap();
        rk[i * n..(i + 1) * n].copy_from_slice(&kbuf.to_host_vec());
        rv[i * n..(i + 1) * n].copy_from_slice(&vbuf.to_host_vec());
    }
    assert_eq!(gk, rk);
    assert_eq!(gv, rv, "stable pair permutations agree");
}

#[test]
fn ragged_and_fixed_agree_on_uniform_lengths() {
    // A ragged batch with equal lengths must equal the fixed-size path.
    let (num, n) = (40usize, 300usize);
    let batch = datagen::ArrayBatch::paper_uniform(77, num, n);
    let offsets: Vec<usize> = (0..=num).map(|i| i * n).collect();

    let mut fixed = batch.clone().into_flat();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    GpuArraySort::new().sort(&mut gpu, &mut fixed, n).unwrap();

    let mut ragged = batch.into_flat();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    sort_ragged(&GpuArraySort::new(), &mut gpu, &mut ragged, &offsets).unwrap();

    assert_eq!(fixed, ragged);
}

#[test]
fn segmented_baseline_agrees_with_gas_everywhere() {
    for (num, n) in [(20usize, 64usize), (7, 1000), (3, 4000)] {
        let batch = datagen::ArrayBatch::paper_uniform(n as u64, num, n);
        let mut a = batch.clone().into_flat();
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        GpuArraySort::new().sort(&mut gpu, &mut a, n).unwrap();
        let mut b = batch.into_flat();
        let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
        thrust_sim::segmented_sort(&mut gpu, &mut b, n).unwrap();
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "GAS vs segmented at {num}×{n}"
        );
    }
}

#[test]
fn real_spectra_pipeline_end_to_end() {
    // Generate spectra → ragged CSR → sort by m/z → verify against CPU.
    let cfg = MassSpecConfig {
        peaks_per_spectrum: 600,
        ..Default::default()
    };
    let spectra = generate_spectra(0xE2E, 50, &cfg);
    let mut ragged = spectra_to_ragged(&spectra, SpectrumKey::Mz);
    let offsets = ragged.offsets().to_vec();
    let mut expect = ragged.as_flat().to_vec();

    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    sort_ragged(
        &GpuArraySort::new(),
        &mut gpu,
        ragged.as_flat_mut(),
        &offsets,
    )
    .unwrap();

    for w in offsets.windows(2) {
        expect[w[0]..w[1]].sort_by(f32::total_cmp);
    }
    assert_eq!(ragged.as_flat(), expect.as_slice());
}

#[test]
fn streams_do_not_change_any_result() {
    // Issue two independent batch sorts on two streams; results must be
    // bitwise identical to serial execution, and the async schedule must
    // finish no later than the serial one.
    let (num, n) = (50usize, 200usize);
    let b1 = datagen::ArrayBatch::paper_uniform(1, num, n);
    let b2 = datagen::ArrayBatch::paper_uniform(2, num, n);

    // Serial.
    let mut s1 = b1.clone().into_flat();
    let mut s2 = b2.clone().into_flat();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    GpuArraySort::new().sort(&mut gpu, &mut s1, n).unwrap();
    GpuArraySort::new().sort(&mut gpu, &mut s2, n).unwrap();
    let serial_ms = gpu.elapsed_ms();

    // Two streams.
    let mut a1 = b1.into_flat();
    let mut a2 = b2.into_flat();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let st1 = gpu.create_stream();
    let st2 = gpu.create_stream();
    let sorter = GpuArraySort::new();

    gpu.set_stream(Some(st1));
    let buf1 = gpu.htod_copy(&a1).unwrap();
    let geom = sorter.geometry(num, n);
    sorter.sort_device(&mut gpu, &buf1, &geom).unwrap();

    gpu.set_stream(Some(st2));
    let buf2 = gpu.htod_copy(&a2).unwrap();
    sorter.sort_device(&mut gpu, &buf2, &geom).unwrap();

    gpu.set_stream(Some(st1));
    let mut buf1 = buf1;
    gpu.dtoh_into(&mut buf1, &mut a1).unwrap();
    gpu.set_stream(Some(st2));
    let mut buf2 = buf2;
    gpu.dtoh_into(&mut buf2, &mut a2).unwrap();
    gpu.set_stream(None);
    let streamed_ms = gpu.synchronize();

    assert_eq!(a1, s1);
    assert_eq!(a2, s2);
    assert!(
        streamed_ms <= serial_ms + 1e-9,
        "two streams must not be slower: {streamed_ms} vs {serial_ms}"
    );
}

#[test]
fn ragged_generator_composes_with_out_of_core_idea() {
    // Large ragged batch on the small device: chunks of the CSR batch are
    // sorted independently (the ragged path is in-core here; this guards
    // the CSR plumbing at scale).
    let ragged = RaggedBatch::generate(9, 2_000, 10, 500, datagen::Distribution::PaperUniform);
    let mut data = ragged.clone();
    let offsets = data.offsets().to_vec();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    sort_ragged(&GpuArraySort::new(), &mut gpu, data.as_flat_mut(), &offsets).unwrap();
    assert!(data.is_each_array_sorted());
    // Multiset check on a few segments.
    for i in [0usize, 7, 1999] {
        let mut a: Vec<u32> = ragged.array(i).iter().map(|x| x.to_bits()).collect();
        let mut b: Vec<u32> = data.array(i).iter().map(|x| x.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "segment {i}");
    }
}
