//! Cross-crate properties for the fused single-kernel pipeline
//! (`gas-fused`) and its warp-multisplit variant (`gas-warp`): for any
//! batch shape, seed or special float values they must return exactly
//! what the CPU oracle returns; under any seeded [`FaultPlan`] the
//! recovering wrapper must still produce the oracle answer; and on the
//! paper's Fig. 2 shapes the fused kernel must move strictly fewer
//! global-memory transactions than the three-kernel pipeline.

use array_sort::{cpu_ref, recover_batch_with, FusedSort, GpuArraySort, RetryPolicy};
use gpu_sim::{DeviceSpec, FaultPlan, Gpu};
use proptest::prelude::*;

fn xorshift_floats(seed: u64, count: usize) -> Vec<f32> {
    let mut x = seed | 1;
    (0..count)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 16) as f32) / 1e4
        })
        .collect()
}

fn device() -> Gpu {
    Gpu::new(DeviceSpec::tesla_k40c())
}

/// f32 values including negatives, zeros, infinities and NaN.
fn any_f32_element() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => -1e9f32..1e9f32,
        1 => Just(0.0f32),
        1 => Just(-0.0f32),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
        1 => Just(f32::NAN),
        1 => Just(f32::MIN_POSITIVE),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fused_matches_the_cpu_oracle_for_any_shape(
        array_len in 1usize..300,
        num_arrays in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut data = xorshift_floats(seed, array_len * num_arrays);
        let original = data.clone();
        let mut gpu = device();
        FusedSort::new().sort(&mut gpu, &mut data, array_len).unwrap();
        prop_assert!(cpu_ref::is_each_sorted(&data, array_len));
        prop_assert_eq!(cpu_ref::verify_against(&original, &data, array_len), None);
    }

    #[test]
    fn fused_handles_special_float_values(
        values in proptest::collection::vec(any_f32_element(), 1..400),
        array_len in 1usize..64,
    ) {
        // Trim to a whole number of arrays (≥1).
        let n = array_len.min(values.len());
        let usable = (values.len() / n) * n;
        let mut data = values[..usable].to_vec();
        let mut expect = data.clone();
        let mut gpu = device();
        FusedSort::new().sort(&mut gpu, &mut data, n).unwrap();
        for seg in expect.chunks_mut(n) {
            seg.sort_by(f32::total_cmp);
        }
        let a: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fused_always_agrees_with_the_three_kernel_pipeline(
        array_len in 1usize..250,
        num_arrays in 1usize..10,
        seed in any::<u64>(),
    ) {
        let total = array_len * num_arrays;
        let mut a = xorshift_floats(seed, total);
        let mut b = a.clone();
        let mut gpu = device();
        FusedSort::new().sort(&mut gpu, &mut a, array_len).unwrap();
        let mut gpu = device();
        GpuArraySort::new().sort(&mut gpu, &mut b, array_len).unwrap();
        prop_assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Chaos invariant: wrapped in [`recover_batch_with`], the fused
    /// pipeline must return the oracle answer under *any* seeded fault
    /// plan, and the report must account for every error-producing fault.
    #[test]
    fn fused_under_any_fault_plan_yields_the_oracle(
        fault_seed in any::<u64>(),
        data_seed in any::<u64>(),
        launch in 0.0f64..0.30,
        abort in 0.0f64..0.20,
        corrupt in 0.0f64..0.20,
        oom in 0.0f64..0.15,
        stall in 0.0f64..0.30,
        num_arrays in 4usize..60,
        array_len in 4usize..64,
    ) {
        let plan = FaultPlan::seeded(fault_seed)
            .with_launch_failure(launch)
            .with_transfer_abort(abort)
            .with_transfer_corruption(corrupt)
            .with_alloc_oom(oom)
            .with_stream_stall(stall, 0.5);
        let mut data = xorshift_floats(data_seed, num_arrays * array_len);
        let original = data.clone();
        let mut gpu = Gpu::new(DeviceSpec::test_device());
        gpu.set_fault_plan(Some(plan));
        let sorter = FusedSort::new();
        let (_, report) = recover_batch_with(
            &mut gpu,
            &mut data,
            array_len,
            &RetryPolicy::default(),
            "gas-fused/batch",
            |g, d| sorter.sort(g, d, array_len),
        )
        .expect("cpu fallback makes the recovering fused sorter infallible");

        prop_assert!(cpu_ref::is_each_sorted(&data, array_len));
        prop_assert_eq!(
            cpu_ref::verify_against(&original, &data, array_len),
            None,
            "output must match the CPU oracle"
        );
        let error_faults = gpu
            .injected_faults()
            .iter()
            .filter(|f| f.kind.is_error())
            .count();
        prop_assert_eq!(
            report.device_faults() as usize,
            error_faults,
            "every injected error fault must be accounted for"
        );
    }

    /// The same chaos invariant for the warp-multisplit variant
    /// (`gas-warp`): any seeded fault plan, same oracle answer, fully
    /// reconciled fault accounting.
    #[test]
    fn gas_warp_under_any_fault_plan_yields_the_oracle(
        fault_seed in any::<u64>(),
        data_seed in any::<u64>(),
        launch in 0.0f64..0.30,
        abort in 0.0f64..0.20,
        corrupt in 0.0f64..0.20,
        oom in 0.0f64..0.15,
        stall in 0.0f64..0.30,
        num_arrays in 4usize..60,
        array_len in 4usize..64,
    ) {
        let plan = FaultPlan::seeded(fault_seed)
            .with_launch_failure(launch)
            .with_transfer_abort(abort)
            .with_transfer_corruption(corrupt)
            .with_alloc_oom(oom)
            .with_stream_stall(stall, 0.5);
        let mut data = xorshift_floats(data_seed, num_arrays * array_len);
        let original = data.clone();
        let mut gpu = Gpu::new(DeviceSpec::test_device());
        gpu.set_fault_plan(Some(plan));
        let sorter = FusedSort::warp();
        let (_, report) = recover_batch_with(
            &mut gpu,
            &mut data,
            array_len,
            &RetryPolicy::default(),
            "gas-warp/batch",
            |g, d| sorter.sort(g, d, array_len),
        )
        .expect("cpu fallback makes the recovering warp sorter infallible");

        prop_assert!(cpu_ref::is_each_sorted(&data, array_len));
        prop_assert_eq!(
            cpu_ref::verify_against(&original, &data, array_len),
            None,
            "gas-warp output must match the CPU oracle under faults"
        );
        let error_faults = gpu
            .injected_faults()
            .iter()
            .filter(|f| f.kind.is_error())
            .count();
        prop_assert_eq!(
            report.device_faults() as usize,
            error_faults,
            "every injected error fault must be accounted for"
        );
    }

    /// With no faults installed the recovering fused path must be a
    /// clean single attempt that keeps its device stats.
    #[test]
    fn fused_recovery_is_transparent_without_faults(
        data_seed in any::<u64>(),
        num_arrays in 1usize..30,
        array_len in 1usize..128,
    ) {
        let mut data = xorshift_floats(data_seed, num_arrays * array_len);
        let original = data.clone();
        let mut gpu = Gpu::new(DeviceSpec::test_device());
        let sorter = FusedSort::new();
        let (stats, report) = recover_batch_with(
            &mut gpu,
            &mut data,
            array_len,
            &RetryPolicy::default(),
            "gas-fused/batch",
            |g, d| sorter.sort(g, d, array_len),
        )
        .unwrap();
        prop_assert!(stats.is_some(), "clean run keeps its device stats");
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.wasted_ms(), 0.0);
        prop_assert_eq!(cpu_ref::verify_against(&original, &data, array_len), None);
    }
}

/// On the paper's Fig. 2 shapes the fused kernel must move strictly
/// fewer global-memory transactions than the three launches it replaces
/// — the whole point of staging into shared memory once.
#[test]
fn fused_moves_less_global_traffic_on_fig2_shapes() {
    for n in [200usize, 600, 1000, 1400, 2000] {
        let num = 40;
        let data = xorshift_floats(0xF16_2 + n as u64, num * n);

        let mut fused_data = data.clone();
        let mut g1 = device();
        FusedSort::new().sort(&mut g1, &mut fused_data, n).unwrap();
        let fused_txns: u64 = g1
            .timeline()
            .kernels
            .iter()
            .map(|k| k.counters.global_txns())
            .sum();

        let mut gas_data = data;
        let mut g2 = device();
        GpuArraySort::new().sort(&mut g2, &mut gas_data, n).unwrap();
        let gas_txns: u64 = g2
            .timeline()
            .kernels
            .iter()
            .map(|k| k.counters.global_txns())
            .sum();

        assert_eq!(
            fused_data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            gas_data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "pipelines must agree before their bills are compared (n={n})"
        );
        assert!(
            fused_txns < gas_txns,
            "n={n}: fused {fused_txns} global txns vs three-kernel {gas_txns}"
        );
    }
}
