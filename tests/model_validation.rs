//! Model validation: the kernels *declare* access patterns (that's what
//! they're charged for); these tests replay the actual address patterns
//! each kernel performs through the exact analyzers
//! ([`gpu_sim::coalescing`], [`gpu_sim::banks`]) and assert the declared
//! transaction counts match (or conservatively over-estimate) reality.

use gpu_sim::coalescing::{strided_transactions, warp_transactions, AccessTrace};
use gpu_sim::cost::{AccessPattern, CostModel};
use gpu_sim::{banks, occupancy, DeviceSpec, KernelResources};

const WARP: u32 = 32;
const SEG: u64 = 128;

fn declared(pattern: AccessPattern, elem_bytes: u32) -> u32 {
    CostModel::default().warp_transactions(pattern, elem_bytes, WARP)
}

#[test]
fn phase2_broadcast_reads_are_one_transaction() {
    // All threads of the bucketing warp read A[i] in lockstep.
    for i in [0u64, 7, 999] {
        let addrs = vec![i * 4; WARP as usize];
        assert_eq!(warp_transactions(&addrs, SEG), 1);
    }
    assert_eq!(declared(AccessPattern::Broadcast, 4), 1);
}

#[test]
fn phase2_writeback_is_coalesced() {
    // Cooperative write-back: thread t writes element t, t+T, …
    let addrs: Vec<u64> = (0..WARP as u64).map(|t| t * 4).collect();
    assert_eq!(warp_transactions(&addrs, SEG), 1);
    assert_eq!(declared(AccessPattern::Coalesced, 4), 1);
}

#[test]
fn phase3_bucket_loads_are_scattered_and_declaration_is_conservative() {
    // Thread t loads the first element of its own ~20-element bucket:
    // addresses are t * bucket_size * 4 apart.
    for bucket_size in [20u64, 40, 80] {
        let addrs: Vec<u64> = (0..WARP as u64).map(|t| t * bucket_size * 4).collect();
        let exact = warp_transactions(&addrs, SEG);
        let decl = declared(AccessPattern::Scattered, 4);
        assert!(
            decl >= exact,
            "declared {decl} must not undercharge exact {exact} at bucket {bucket_size}"
        );
        // With ≥32 buckets of ≥20 floats the accesses genuinely scatter.
        assert!(exact >= WARP / 2, "bucket stride {bucket_size}: {exact}");
    }
}

#[test]
fn phase1_single_lane_sequential_matches_its_model() {
    // One active lane reading n consecutive floats touches n/32 segments;
    // the SingleLaneSequential pattern charges 4 segment-transactions per
    // 32 elements (a 4× serialization penalty), i.e. ≥ the exact count.
    let n = 1024u64;
    let mut trace = AccessTrace::new();
    for chunk in 0..(n / WARP as u64) {
        // Model granularity: one "warp access" batch of 32 sequential reads.
        let addrs: Vec<u64> = (0..WARP as u64).map(|i| (chunk * 32 + i) * 4).collect();
        trace.record_warp(addrs);
    }
    let exact = trace.total_transactions(SEG);
    let decl_per_batch = declared(AccessPattern::SingleLaneSequential, 4) as u64;
    let declared_total = decl_per_batch * (n / WARP as u64);
    assert!(declared_total >= exact, "{declared_total} >= {exact}");
    assert!(
        declared_total <= 8 * exact,
        "…but within one order of magnitude"
    );
}

#[test]
fn radix_scatter_strided2_brackets_reality() {
    // Scatter destinations of consecutive same-digit elements are
    // contiguous runs; across a warp the runs split over ~2–8 segments
    // depending on digit entropy. Strided(2) (= 2 txns) is the calibrated
    // effective figure; verify it sits between the best and worst case.
    let best: Vec<u64> = (0..WARP as u64).map(|i| i * 4).collect(); // one run
    let worst: Vec<u64> = (0..WARP as u64).map(|i| i * 4096).collect(); // all split
    let b = warp_transactions(&best, SEG);
    let w = warp_transactions(&worst, SEG);
    let decl = declared(AccessPattern::Strided(2), 4);
    assert!(b <= decl && decl <= w, "{b} <= {decl} <= {w}");
}

#[test]
fn shared_staging_writes_have_bounded_bank_conflicts() {
    // Phase-2 staging: thread j writes at its bucket cursor. Cursors start
    // at multiples of ~20 (bucket offsets); stride-20 words over 32 banks
    // conflicts 4-way at worst for f32.
    let degree = banks::strided_conflict_degree(0, 20 * 4, WARP);
    assert!(degree <= 8, "stride-20 staging conflicts {degree}-way");
    // The classic fix (pad to 21) would make it conflict-free:
    assert_eq!(banks::strided_conflict_degree(0, 21 * 4, WARP), 1);
}

#[test]
fn phase_occupancies_tell_the_papers_resource_story() {
    let spec = DeviceSpec::tesla_k40c();
    // Phase 1 at n = 4000: 1-thread blocks holding 16 KB + 1.6 KB shared.
    let p1 = occupancy(&spec, &KernelResources::new(1, 17_600));
    // Phase 2 at n = 1000: 50 threads, array + tables in shared (~4.4 KB).
    let p2 = occupancy(&spec, &KernelResources::new(50, 4_500));
    // Phase 3: 50 threads, bucket staging (~4 KB).
    let p3 = occupancy(&spec, &KernelResources::new(50, 4_000));
    assert!(
        p1.fraction < 0.05,
        "phase 1 occupancy is tiny: {}",
        p1.fraction
    );
    assert!(
        p2.fraction > 0.2,
        "phase 2 keeps the SM busy: {}",
        p2.fraction
    );
    assert!(p3.fraction >= p2.fraction * 0.9);
    // This is exactly why phase 1 dominates the measured kernel time even
    // though its per-element work is modest.
}

#[test]
fn strided_analyzer_agrees_with_declared_for_every_power_of_two() {
    let m = CostModel::default();
    for stride in [1u32, 2, 4, 8, 16, 32] {
        let exact = strided_transactions(0, stride as u64 * 4, WARP, SEG);
        let decl = m.warp_transactions(AccessPattern::Strided(stride), 4, WARP);
        assert_eq!(decl, exact, "stride {stride}");
    }
}
