//! Phase-by-phase validation of the algorithm's intermediate state — the
//! executable counterpart of the paper's Fig. 1/Fig. 3 walk-throughs.

use array_sort::bucketing::{bucket_arrays, bucket_index};
use array_sort::geometry::BatchGeometry;
use array_sort::key::SortKey;
use array_sort::sorting::sort_buckets;
use array_sort::splitters::select_splitters;
use array_sort::ArraySortConfig;
use datagen::ArrayBatch;
use gpu_sim::{DeviceSpec, Gpu};

struct PhaseRun {
    gpu: Gpu,
    geom: BatchGeometry,
    data: gpu_sim::DeviceBuffer<f32>,
    splitters: gpu_sim::DeviceBuffer<f32>,
    z: gpu_sim::DeviceBuffer<u32>,
    original: ArrayBatch,
    cfg: ArraySortConfig,
}

fn setup(num: usize, n: usize) -> PhaseRun {
    let cfg = ArraySortConfig::default();
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    let geom = BatchGeometry::new(num, n, &cfg);
    let original = ArrayBatch::paper_uniform(0xF1, num, n);
    let data = gpu.htod_copy(original.as_flat()).unwrap();
    let splitters = gpu.alloc::<f32>(geom.splitter_table_len()).unwrap();
    let z = gpu.alloc::<u32>(geom.bucket_table_len()).unwrap();
    PhaseRun {
        gpu,
        geom,
        data,
        splitters,
        z,
        original,
        cfg,
    }
}

#[test]
fn phase1_leaves_data_untouched_and_emits_valid_boundaries() {
    let mut r = setup(25, 1000);
    select_splitters(&mut r.gpu, &r.data, &r.splitters, &r.geom).unwrap();

    // Data must be untouched: Phase 1 only reads.
    assert_eq!(r.data.as_slice(), r.original.as_flat());

    // Boundaries: p+1 per array, ascending, sentinel-bracketed.
    let table = r.splitters.to_host_vec();
    for i in 0..r.geom.num_arrays {
        let row = &table[r.geom.splitter_offset(i)..][..r.geom.boundaries_per_array];
        assert_eq!(row[0].to_bits(), f32::min_sentinel().to_bits());
        assert_eq!(
            row[r.geom.buckets_per_array].to_bits(),
            f32::max_sentinel().to_bits()
        );
        assert!(row.windows(2).all(|w| w[0].le(w[1])));
    }
}

#[test]
fn phase2_partitions_without_sorting_buckets() {
    let mut r = setup(10, 500);
    select_splitters(&mut r.gpu, &r.data, &r.splitters, &r.geom).unwrap();
    bucket_arrays(&mut r.gpu, &r.data, &r.splitters, &r.z, &r.geom, &r.cfg).unwrap();

    let table = r.splitters.to_host_vec();
    let z = r.z.to_host_vec();
    let bucketed = r.data.to_host_vec();
    let n = r.geom.array_len;
    let p = r.geom.buckets_per_array;

    let mut some_bucket_unsorted = false;
    for i in 0..r.geom.num_arrays {
        let bounds = &table[r.geom.splitter_offset(i)..][..p + 1];
        let zrow = &z[r.geom.bucket_offset(i)..][..p];
        let arr = &bucketed[i * n..(i + 1) * n];

        // Every element sits inside its claimed bucket's boundary pair.
        let mut off = 0usize;
        for (j, &c) in zrow.iter().enumerate() {
            for &x in &arr[off..off + c as usize] {
                assert_eq!(
                    bucket_index(bounds, x),
                    j,
                    "element {x} filed in bucket {j} of array {i}"
                );
            }
            if arr[off..off + c as usize].windows(2).any(|w| w[1].lt(w[0])) {
                some_bucket_unsorted = true;
            }
            off += c as usize;
        }
        assert_eq!(off, n, "bucket sizes tile the array exactly");
    }
    // Phase 2 must NOT have sorted inside buckets — that's Phase 3's job
    // (with 500-element arrays some bucket will contain an inversion).
    assert!(
        some_bucket_unsorted,
        "phase 2 only partitions; buckets stay unsorted"
    );
}

#[test]
fn phase3_sorts_buckets_in_place_without_moving_across_buckets() {
    let mut r = setup(10, 500);
    select_splitters(&mut r.gpu, &r.data, &r.splitters, &r.geom).unwrap();
    bucket_arrays(&mut r.gpu, &r.data, &r.splitters, &r.z, &r.geom, &r.cfg).unwrap();
    let before = r.data.to_host_vec();
    let z = r.z.to_host_vec();
    sort_buckets(&mut r.gpu, &r.data, &r.z, &r.geom, &r.cfg).unwrap();
    let after = r.data.to_host_vec();

    let n = r.geom.array_len;
    let p = r.geom.buckets_per_array;
    for i in 0..r.geom.num_arrays {
        // Whole array now ascending (per-array total sort achieved).
        let arr = &after[i * n..(i + 1) * n];
        assert!(
            arr.windows(2).all(|w| w[0].le(w[1])),
            "array {i} fully sorted"
        );

        // Each bucket is a permutation of its pre-phase-3 content:
        // phase 3 never moves elements across bucket boundaries.
        let zrow = &z[r.geom.bucket_offset(i)..][..p];
        let mut off = 0usize;
        for &c in zrow {
            let mut a: Vec<u32> = before[i * n + off..i * n + off + c as usize]
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let mut b: Vec<u32> = after[i * n + off..i * n + off + c as usize]
                .iter()
                .map(|x| x.to_bits())
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(
                a, b,
                "bucket at offset {off} of array {i} is closed under phase 3"
            );
            off += c as usize;
        }
    }
}

#[test]
fn three_phases_use_exactly_three_kernel_launches() {
    let mut r = setup(5, 200);
    select_splitters(&mut r.gpu, &r.data, &r.splitters, &r.geom).unwrap();
    bucket_arrays(&mut r.gpu, &r.data, &r.splitters, &r.z, &r.geom, &r.cfg).unwrap();
    sort_buckets(&mut r.gpu, &r.data, &r.z, &r.geom, &r.cfg).unwrap();
    let names: Vec<&str> = r
        .gpu
        .timeline()
        .kernels
        .iter()
        .map(|k| k.name.as_str())
        .collect();
    assert_eq!(
        names,
        vec![
            "gas_phase1_splitters",
            "gas_phase2_bucketing",
            "gas_phase3_bucket_sort"
        ],
        "the paper's 'three different phases, each … a separate kernel launch'"
    );
    // One block per array in every launch.
    for k in &r.gpu.timeline().kernels {
        assert_eq!(k.grid_dim as usize, r.geom.num_arrays);
    }
}

#[test]
fn in_place_claim_no_data_sized_temporaries() {
    // Peak memory during the three phases = data + S + Z only.
    let mut r = setup(50, 1000);
    let base = r.data.size_bytes() + r.splitters.size_bytes() + r.z.size_bytes();
    assert_eq!(r.gpu.ledger().used(), base);
    select_splitters(&mut r.gpu, &r.data, &r.splitters, &r.geom).unwrap();
    bucket_arrays(&mut r.gpu, &r.data, &r.splitters, &r.z, &r.geom, &r.cfg).unwrap();
    sort_buckets(&mut r.gpu, &r.data, &r.z, &r.geom, &r.cfg).unwrap();
    assert_eq!(
        r.gpu.ledger().peak(),
        base,
        "no phase may allocate data-sized device temporaries (shared staging path)"
    );
}
