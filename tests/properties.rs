//! Property-based tests (proptest) over the public APIs: whatever the
//! shape, distribution or special values, sorting must produce per-array
//! ascending permutations, and the substrates must match their reference
//! semantics.

use array_sort::{cpu_ref, ArraySortConfig, GpuArraySort};
use gpu_sim::{DeviceSpec, Gpu};
use proptest::prelude::*;

fn xorshift_floats(seed: u64, count: usize) -> Vec<f32> {
    let mut x = seed | 1;
    (0..count)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 16) as f32) / 1e4
        })
        .collect()
}

fn device() -> Gpu {
    Gpu::new(DeviceSpec::tesla_k40c())
}

/// f32 values including negatives, zeros, infinities and NaN.
fn any_f32_element() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => -1e9f32..1e9f32,
        1 => Just(0.0f32),
        1 => Just(-0.0f32),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
        1 => Just(f32::NAN),
        1 => Just(f32::MIN_POSITIVE),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn gas_sorts_any_batch(
        array_len in 1usize..300,
        num_arrays in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng_data: Vec<f32> = Vec::new();
        let mut x = seed | 1;
        for _ in 0..array_len * num_arrays {
            // xorshift for speed inside proptest
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            rng_data.push((x as f32) / 1e10);
        }
        let original = rng_data.clone();
        let mut gpu = device();
        GpuArraySort::new().sort(&mut gpu, &mut rng_data, array_len).unwrap();
        prop_assert!(cpu_ref::is_each_sorted(&rng_data, array_len));
        prop_assert_eq!(cpu_ref::verify_against(&original, &rng_data, array_len), None);
    }

    #[test]
    fn gas_handles_special_float_values(
        values in proptest::collection::vec(any_f32_element(), 1..400),
        array_len in 1usize..64,
    ) {
        // Trim to a whole number of arrays (≥1).
        let n = array_len.min(values.len());
        let usable = (values.len() / n) * n;
        let mut data = values[..usable].to_vec();
        let mut expect = data.clone();
        let mut gpu = device();
        GpuArraySort::new().sort(&mut gpu, &mut data, n).unwrap();
        for seg in expect.chunks_mut(n) {
            seg.sort_by(f32::total_cmp);
        }
        let a: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sta_matches_cpu_on_any_batch(
        array_len in 1usize..128,
        num_arrays in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut x = seed | 1;
        let mut data: Vec<f32> = Vec::new();
        for _ in 0..array_len * num_arrays {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            data.push(((x >> 8) as f32) / 1e8);
        }
        let mut cpu = data.clone();
        cpu_ref::sort_arrays_seq(&mut cpu, array_len);
        let mut gpu = device();
        thrust_sim::sta::sort_arrays(&mut gpu, &mut data, array_len).unwrap();
        prop_assert_eq!(data, cpu);
    }

    #[test]
    fn scan_matches_prefix_sum(input in proptest::collection::vec(0u32..1000, 0..3000)) {
        let mut gpu = device();
        let mut buf = gpu.htod_copy(&input).unwrap();
        let total = thrust_sim::exclusive_scan(&mut gpu, &mut buf).unwrap();
        let mut acc = 0u64;
        let mut expect = Vec::with_capacity(input.len());
        for &v in &input {
            expect.push(acc as u32);
            acc += v as u64;
        }
        prop_assert_eq!(buf.as_slice(), expect.as_slice());
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn radix_sort_is_stable_permutation(
        keys in proptest::collection::vec(0u32..64, 1..5000),
    ) {
        // Few distinct keys maximize stability pressure.
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let mut gpu = device();
        let mut k = gpu.htod_copy(&keys).unwrap();
        let mut v = gpu.htod_copy(&vals).unwrap();
        thrust_sim::stable_sort_by_key(&mut gpu, &mut k, &mut v).unwrap();
        let ks = k.to_host_vec();
        let vs = v.to_host_vec();
        prop_assert!(ks.windows(2).all(|w| w[0] <= w[1]));
        for i in 1..ks.len() {
            if ks[i - 1] == ks[i] {
                prop_assert!(vs[i - 1] < vs[i], "stability at {i}");
            }
        }
        // vs is a permutation of 0..len.
        let mut seen = vs.clone();
        seen.sort_unstable();
        prop_assert!(seen.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn bucket_config_never_breaks_correctness(
        bucket_size in 1usize..200,
        rate_pct in 1u32..=100,
        seed in any::<u64>(),
    ) {
        let cfg = ArraySortConfig {
            target_bucket_size: bucket_size,
            sampling_rate: rate_pct as f64 / 100.0,
            ..Default::default()
        };
        let n = 150;
        let mut x = seed | 1;
        let mut data: Vec<f32> = Vec::new();
        for _ in 0..n * 8 {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            data.push((x % 1000) as f32);
        }
        let mut gpu = device();
        GpuArraySort::with_config(cfg).unwrap().sort(&mut gpu, &mut data, n).unwrap();
        prop_assert!(cpu_ref::is_each_sorted(&data, n));
    }

    #[test]
    fn pairs_preserve_binding_for_any_shape(
        array_len in 1usize..200,
        num_arrays in 1usize..12,
        seed in any::<u64>(),
    ) {
        let total = array_len * num_arrays;
        let mut keys = xorshift_floats(seed, total);
        // Payload derived from keys: binding must survive the sort.
        let mut vals: Vec<u32> = keys.iter().map(|k| k.to_bits() ^ 0xABCD).collect();
        let mut gpu = device();
        array_sort::sort_pairs(&GpuArraySort::new(), &mut gpu, &mut keys, &mut vals, array_len)
            .unwrap();
        prop_assert!(cpu_ref::is_each_sorted(&keys, array_len));
        for (k, v) in keys.iter().zip(&vals) {
            prop_assert_eq!(*v, k.to_bits() ^ 0xABCD, "binding broken");
        }
    }

    #[test]
    fn ragged_sorts_arbitrary_offset_shapes(
        lens in proptest::collection::vec(0usize..300, 1..30),
        seed in any::<u64>(),
    ) {
        let mut offsets = vec![0usize];
        for l in &lens {
            offsets.push(offsets.last().unwrap() + l);
        }
        let mut data = xorshift_floats(seed, *offsets.last().unwrap());
        let original = data.clone();
        let mut gpu = device();
        array_sort::sort_ragged(&GpuArraySort::new(), &mut gpu, &mut data, &offsets).unwrap();
        for w in offsets.windows(2) {
            let seg = &data[w[0]..w[1]];
            prop_assert!(seg.windows(2).all(|x| x[0] <= x[1]));
            let mut a: Vec<u32> = original[w[0]..w[1]].iter().map(|x| x.to_bits()).collect();
            let mut b: Vec<u32> = seg.iter().map(|x| x.to_bits()).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn merge_variant_always_agrees_with_gas(
        array_len in 1usize..250,
        num_arrays in 1usize..10,
        seed in any::<u64>(),
    ) {
        let total = array_len * num_arrays;
        let mut a = xorshift_floats(seed, total);
        let mut b = a.clone();
        let mut gpu = device();
        GpuArraySort::new().sort(&mut gpu, &mut a, array_len).unwrap();
        let mut gpu = device();
        array_sort::merge_sort_arrays(&mut gpu, &mut b, array_len, &ArraySortConfig::default())
            .unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn adaptive_mode_never_changes_results(
        array_len in 1usize..300,
        seed in any::<u64>(),
    ) {
        let mut a = xorshift_floats(seed, array_len * 4);
        let mut b = a.clone();
        let mut gpu = device();
        GpuArraySort::new().sort(&mut gpu, &mut a, array_len).unwrap();
        let cfg = ArraySortConfig { adaptive_bucket_sort: true, ..Default::default() };
        let mut gpu = device();
        GpuArraySort::with_config(cfg).unwrap().sort(&mut gpu, &mut b, array_len).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn memory_ledger_is_exact_after_any_run(
        num_arrays in 1usize..30,
        array_len in 1usize..200,
    ) {
        let gpu = device();
        let before = gpu.ledger().used();
        {
            let buf = gpu.alloc::<f32>(num_arrays * array_len).unwrap();
            prop_assert_eq!(
                gpu.ledger().used(),
                before + buf.size_bytes()
            );
        }
        prop_assert_eq!(gpu.ledger().used(), before, "drop releases exactly");
    }
}
