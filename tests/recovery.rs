//! Cross-crate chaos properties: for *any* seeded [`FaultPlan`], the
//! recovering out-of-core sorter must return exactly what the CPU
//! oracle returns, and the [`RecoveryReport`] must account for every
//! error-producing fault the device logged. This is the suite the CI
//! chaos matrix fans out across `CHAOS_SEED`s.

use array_sort::{
    cpu_ref, sort_out_of_core_recovering, sort_ragged_with_recovery, GpuArraySort, RetryPolicy,
};
use gpu_sim::{DeviceSpec, FaultPlan, Gpu};
use proptest::prelude::*;

fn xorshift_floats(seed: u64, count: usize) -> Vec<f32> {
    let mut x = seed | 1;
    (0..count)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 16) as f32) / 1e4
        })
        .collect()
}

/// Runs the recovering sorter under `plan` and checks the two chaos
/// invariants; returns (retries, cpu_fallbacks, error_faults).
fn run_chaos(
    plan: FaultPlan,
    data_seed: u64,
    num_arrays: usize,
    array_len: usize,
) -> (u32, u32, usize) {
    let mut data = xorshift_floats(data_seed, num_arrays * array_len);
    let original = data.clone();
    let mut gpu = Gpu::new(DeviceSpec::test_device());
    gpu.set_fault_plan(Some(plan));
    let (_, report) = sort_out_of_core_recovering(
        &GpuArraySort::new(),
        &mut gpu,
        &mut data,
        array_len,
        &RetryPolicy::default(),
    )
    .expect("cpu fallback makes the recovering sorter infallible under injected faults");

    assert!(cpu_ref::is_each_sorted(&data, array_len));
    assert_eq!(
        cpu_ref::verify_against(&original, &data, array_len),
        None,
        "output must match the CPU oracle"
    );
    let error_faults = gpu
        .injected_faults()
        .iter()
        .filter(|f| f.kind.is_error())
        .count();
    assert_eq!(
        report.device_faults() as usize,
        error_faults,
        "every injected error fault must be accounted for"
    );
    if report.retries() > 0 || report.cpu_fallbacks() > 0 {
        assert!(
            gpu.timeline()
                .spans
                .iter()
                .any(|s| s.name.starts_with("recovery/")),
            "recovery work must be visible in the trace"
        );
    }
    (report.retries(), report.cpu_fallbacks(), error_faults)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn any_fault_plan_still_yields_the_oracle_answer(
        fault_seed in any::<u64>(),
        data_seed in any::<u64>(),
        launch in 0.0f64..0.30,
        abort in 0.0f64..0.20,
        corrupt in 0.0f64..0.20,
        oom in 0.0f64..0.15,
        stall in 0.0f64..0.30,
        num_arrays in 20usize..120,
        array_len in 4usize..64,
    ) {
        let plan = FaultPlan::seeded(fault_seed)
            .with_launch_failure(launch)
            .with_transfer_abort(abort)
            .with_transfer_corruption(corrupt)
            .with_alloc_oom(oom)
            .with_stream_stall(stall, 0.5);
        run_chaos(plan, data_seed, num_arrays, array_len);
    }

    #[test]
    fn retry_counts_match_injected_transients(
        fault_seed in any::<u64>(),
        data_seed in any::<u64>(),
        launch in 0.05f64..0.5,
        num_arrays in 10usize..60,
        array_len in 8usize..48,
    ) {
        // Every failed attempt fails fast on its first injected fault,
        // so failed attempts == injected error faults. A recovered
        // chunk's failed attempts are its retries; a fallback chunk
        // burns max_attempts = retries + 1.
        let plan = FaultPlan::seeded(fault_seed).with_launch_failure(launch);
        let (retries, fallbacks, error_faults) =
            run_chaos(plan, data_seed, num_arrays, array_len);
        prop_assert_eq!(
            retries + fallbacks,
            error_faults as u32,
            "attempts bookkeeping must match the fault log"
        );
    }
}

/// Sorts every `[offsets[i], offsets[i+1])` window under f32's total
/// order — the host oracle for a ragged batch.
fn ragged_oracle(data: &[f32], offsets: &[usize]) -> Vec<f32> {
    let mut out = data.to_vec();
    for w in offsets.windows(2) {
        out[w[0]..w[1]].sort_by(|a, b| a.total_cmp(b));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The recovering ragged sorter must return the oracle answer bit
    /// for bit under *any* fault plan — including empty segments — and
    /// its report must reconcile with the injector log.
    #[test]
    fn ragged_recovery_yields_the_oracle_for_any_plan(
        fault_seed in any::<u64>(),
        data_seed in any::<u64>(),
        launch in 0.0f64..0.35,
        abort in 0.0f64..0.20,
        corrupt in 0.0f64..0.20,
        stall in 0.0f64..0.25,
        lens in prop::collection::vec(0usize..96, 1..40),
    ) {
        let mut offsets = vec![0usize];
        for l in &lens {
            offsets.push(offsets.last().unwrap() + l);
        }
        let mut data = xorshift_floats(data_seed, *offsets.last().unwrap());
        let oracle = ragged_oracle(&data, &offsets);

        let plan = FaultPlan::seeded(fault_seed)
            .with_launch_failure(launch)
            .with_transfer_abort(abort)
            .with_transfer_corruption(corrupt)
            .with_stream_stall(stall, 0.3);
        let mut gpu = Gpu::new(DeviceSpec::test_device());
        gpu.set_fault_plan(Some(plan));
        let (_, report) = sort_ragged_with_recovery(
            &GpuArraySort::new(),
            &mut gpu,
            &mut data,
            &offsets,
            &RetryPolicy::default(),
        )
        .expect("cpu fallback makes ragged recovery infallible under injected faults");

        prop_assert_eq!(
            data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            oracle.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "ragged output must match the per-segment oracle"
        );
        let error_faults = gpu
            .injected_faults()
            .iter()
            .filter(|f| f.kind.is_error())
            .count();
        prop_assert_eq!(
            report.device_faults() as usize,
            error_faults,
            "every injected error fault must be accounted for"
        );
    }

    /// With no faults installed the recovering ragged path must be a
    /// clean single attempt — no retries, no fallback, no wasted time.
    #[test]
    fn ragged_recovery_is_transparent_without_faults(
        data_seed in any::<u64>(),
        lens in prop::collection::vec(0usize..64, 1..20),
    ) {
        let mut offsets = vec![0usize];
        for l in &lens {
            offsets.push(offsets.last().unwrap() + l);
        }
        let mut data = xorshift_floats(data_seed, *offsets.last().unwrap());
        let oracle = ragged_oracle(&data, &offsets);
        let mut gpu = Gpu::new(DeviceSpec::test_device());
        let (stats, report) = sort_ragged_with_recovery(
            &GpuArraySort::new(),
            &mut gpu,
            &mut data,
            &offsets,
            &RetryPolicy::default(),
        )
        .unwrap();
        prop_assert!(stats.is_some(), "clean run keeps its device stats");
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.wasted_ms(), 0.0);
        prop_assert_eq!(
            data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            oracle.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}

/// The deterministic leg the CI chaos matrix runs per `CHAOS_SEED`:
/// a fixed multi-chunk workload with every fault class enabled.
#[test]
fn chaos_matrix_seed_invariants_hold() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let plan = FaultPlan::seeded(seed)
        .with_launch_failure(0.05)
        .with_transfer_abort(0.04)
        .with_transfer_corruption(0.04)
        .with_alloc_oom(0.03)
        .with_stream_stall(0.05, 0.5);
    // 20k × 500 f32 does not fit the 64 MiB test device in one chunk,
    // so recovery has to checkpoint across multiple chunks.
    run_chaos(plan, seed.wrapping_mul(0x9E37_79B9), 20_000, 500);
}

/// Identical seeds must replay the identical campaign (fault log,
/// report and output all bit-equal) — the property CI relies on to
/// reproduce a red seed locally.
#[test]
fn chaos_runs_are_reproducible() {
    let run = || {
        let plan = FaultPlan::seeded(7)
            .with_launch_failure(0.15)
            .with_transfer_abort(0.10);
        let mut data = xorshift_floats(7, 600 * 32);
        let mut gpu = Gpu::new(DeviceSpec::test_device());
        gpu.set_fault_plan(Some(plan));
        let (_, report) = sort_out_of_core_recovering(
            &GpuArraySort::new(),
            &mut gpu,
            &mut data,
            32,
            &RetryPolicy::default(),
        )
        .unwrap();
        (data, gpu.injected_faults(), report, gpu.elapsed_ms())
    };
    let (d1, f1, r1, t1) = run();
    let (d2, f2, r2, t2) = run();
    assert_eq!(d1, d2);
    assert_eq!(f1, f2);
    assert_eq!(r1, r2);
    assert_eq!(t1, t2);
}
