//! End-to-end scheduler soak properties: a seeded campaign over a
//! heterogeneous device pool under injected faults must be
//! bit-reproducible, reconcile every fault with the injector logs, and
//! give every request an explicit fate. This is the contract the CI
//! `soak` job (and `gas soak`) asserts across thousands of requests.

use gpu_sim::FaultPlan;
use proptest::prelude::*;
use scheduler::{parse_mix, Outcome, SchedulerConfig, SortService, Workload, WorkloadConfig};

fn soak_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_launch_failure(0.03)
        .with_transfer_abort(0.03)
        .with_transfer_corruption(0.02)
        .with_stream_stall(0.04, 0.2)
}

/// The tail-tolerance adversary: permanent device deaths mixed with a
/// stall storm (the two failure modes the watchdog/hedging/ladder layer
/// exists for), plus a trickle of transient launch failures.
fn tail_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_launch_failure(0.02)
        .with_device_death(0.015)
        .with_stream_stall(0.25, 1.5)
}

/// Runs one campaign with the whole tail-tolerance layer armed:
/// attempt watchdog, request hedging and the degradation ladder.
fn run_tail_campaign(seed: u64, requests: usize) -> (scheduler::ServiceReport, String) {
    let workload = Workload::generate(&WorkloadConfig {
        seed,
        requests,
        warp_fraction: 0.2,
        fused_fraction: 0.2,
        ..WorkloadConfig::default()
    });
    let plan = tail_plan(seed.wrapping_add(1));
    let cfg = SchedulerConfig {
        seed,
        timeout_slack: 2.5,
        hedge_slack_ms: 4.0,
        degrade: true,
        ..SchedulerConfig::default()
    };
    let mut service =
        SortService::new(parse_mix("test,k40c", 4).unwrap(), cfg, Some(&plan)).unwrap();
    let report = service.run(&workload).unwrap();
    let snapshot = service.metrics_snapshot().to_json();
    (report, snapshot)
}

#[test]
fn death_storm_collapses_the_pool_onto_the_host_but_loses_nothing() {
    // An aggressive per-launch death rate kills every device early; the
    // ladder must reach host-only serving and every request still gets
    // an explicit, reconciled fate.
    let plan = FaultPlan::seeded(9).with_device_death(0.2);
    let cfg = SchedulerConfig {
        seed: 9,
        degrade: true,
        ..SchedulerConfig::default()
    };
    let workload = Workload::generate(&WorkloadConfig {
        seed: 9,
        requests: 40,
        ..WorkloadConfig::default()
    });
    let mut service = SortService::new(parse_mix("test", 2).unwrap(), cfg, Some(&plan)).unwrap();
    let report = service.run(&workload).unwrap();
    assert_eq!(report.invariant_violations(), Vec::<String>::new());
    assert_eq!(
        report.completed + report.cpu_fallbacks + report.shed + report.rejected,
        40
    );
    let deaths: usize = report.devices.iter().map(|d| d.deaths).sum();
    assert_eq!(deaths, 2, "both devices must die under a 20% death rate");
    assert!(
        report.devices.iter().all(|d| d.blacklisted),
        "a dead device is blacklisted forever"
    );
    assert_eq!(
        report.degradation.max_level, 4,
        "losing the whole pool must drive the ladder to host-only"
    );
    assert!(
        report.cpu_fallbacks + report.shed > 0,
        "post-death work is host-served or explicitly shed, never dropped"
    );
}

fn run_campaign(seed: u64, requests: usize) -> scheduler::ServiceReport {
    run_campaign_with_metrics(seed, requests, 0.0, 0.0).0
}

/// Runs one campaign and returns both the report and the serialized
/// telemetry snapshot, optionally routing request shares to the
/// `gas-warp` and `gas-fused` pipelines.
fn run_campaign_with_metrics(
    seed: u64,
    requests: usize,
    warp_fraction: f64,
    fused_fraction: f64,
) -> (scheduler::ServiceReport, String) {
    let workload = Workload::generate(&WorkloadConfig {
        seed,
        requests,
        warp_fraction,
        fused_fraction,
        ..WorkloadConfig::default()
    });
    let plan = soak_plan(seed.wrapping_add(1));
    let cfg = SchedulerConfig {
        seed,
        ..SchedulerConfig::default()
    };
    let mut service =
        SortService::new(parse_mix("test,k40c", 4).unwrap(), cfg, Some(&plan)).unwrap();
    let report = service.run(&workload).unwrap();
    let snapshot = service.metrics_snapshot().to_json();
    (report, snapshot)
}

#[test]
fn soak_campaigns_are_byte_identical_and_reconciled() {
    let a = run_campaign(42, 150);
    let b = run_campaign(42, 150);
    assert_eq!(a, b, "same seed, same report");
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "byte-identical serialized reports"
    );
    assert_eq!(a.invariant_violations(), Vec::<String>::new());
    assert_eq!(a.records.len(), 150, "one record per request");
    assert_eq!(a.completed + a.cpu_fallbacks + a.shed + a.rejected, 150);
}

#[test]
fn telemetry_covers_every_gas_variant_and_matches_the_slo_section() {
    let (report, snapshot) = run_campaign_with_metrics(42, 150, 0.25, 0.25);
    let snap = scheduler::Snapshot::from_json(&snapshot).unwrap();
    // With all three pipelines in the mix, the cost-model accuracy
    // family must carry a labeled series per variant.
    for variant in ["three-kernel", "fused", "warp"] {
        assert!(
            snap.histograms.iter().any(|h| {
                h.name == "gas_model_accuracy_rel_err"
                    && h.labels.iter().any(|(k, v)| k == "variant" && v == variant)
            }),
            "missing gas_model_accuracy_rel_err series for variant {variant}"
        );
    }
    // The report's SLO section is derived from that same registry, and
    // recomputing it from the raw records must agree exactly.
    assert_eq!(report.slo, report.slo_from_records());
    assert_eq!(report.invariant_violations(), Vec::<String>::new());
}

#[test]
fn different_seeds_diverge() {
    let a = run_campaign(1, 60);
    let b = run_campaign(2, 60);
    assert_ne!(a.to_json(), b.to_json());
    assert_eq!(a.invariant_violations(), Vec::<String>::new());
    assert_eq!(b.invariant_violations(), Vec::<String>::new());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The soak invariants hold for *any* campaign seed, not just the
    /// pinned ones: every admitted request verifies against the oracle,
    /// nothing is dropped silently, and the per-device fault accounting
    /// matches the injector logs.
    #[test]
    fn any_seed_reconciles(seed in any::<u64>()) {
        let report = run_campaign(seed, 40);
        prop_assert_eq!(report.invariant_violations(), Vec::<String>::new());
        prop_assert_eq!(report.records.len(), 40);
        for r in &report.records {
            match &r.outcome {
                Outcome::Completed { .. } | Outcome::CpuFallback { .. } | Outcome::CacheHit => {
                    prop_assert_eq!(r.verified, Some(true), "request {} unverified", r.id);
                }
                Outcome::Shed { reason } | Outcome::Rejected { reason } => {
                    prop_assert!(!reason.is_empty(), "request {} dropped silently", r.id);
                }
            }
        }
    }

    /// Two campaigns from the same seed must emit *byte-identical*
    /// telemetry snapshots — determinism extends beyond the report to
    /// every counter, gauge and histogram bucket, for any seed and any
    /// variant mix.
    #[test]
    fn same_seed_telemetry_snapshots_are_byte_identical(
        seed in any::<u64>(),
        warp in 0.0f64..0.5,
        fused in 0.0f64..0.5,
    ) {
        let (report_a, snap_a) = run_campaign_with_metrics(seed, 40, warp, fused);
        let (report_b, snap_b) = run_campaign_with_metrics(seed, 40, warp, fused);
        prop_assert_eq!(report_a.to_json(), report_b.to_json());
        prop_assert_eq!(snap_a.clone(), snap_b);
        // The snapshot round-trips through its own parser untouched.
        let parsed = scheduler::Snapshot::from_json(&snap_a).unwrap();
        prop_assert_eq!(parsed.to_json(), snap_a);
    }

    /// The tail-tolerance layer keeps every soak guarantee under its
    /// adversary: for any seeded plan mixing permanent device deaths
    /// with a stall storm — watchdog, hedging and ladder all armed —
    /// every produced output equals the CPU oracle bit-for-bit, the
    /// hedge/timeout/death accounting reconciles against the injector
    /// logs (via `invariant_violations`), and same-seed replay yields
    /// byte-identical reports *and* telemetry snapshots.
    #[test]
    fn tail_tolerance_campaigns_reconcile_and_replay(seed in any::<u64>()) {
        let (a, snap_a) = run_tail_campaign(seed, 30);
        let (b, snap_b) = run_tail_campaign(seed, 30);
        prop_assert_eq!(a.to_json(), b.to_json(), "report replay must be byte-identical");
        prop_assert_eq!(snap_a, snap_b, "telemetry replay must be byte-identical");
        prop_assert_eq!(a.invariant_violations(), Vec::<String>::new());
        prop_assert_eq!(a.records.len(), 30);
        for r in &a.records {
            match &r.outcome {
                Outcome::Completed { .. } | Outcome::CpuFallback { .. } | Outcome::CacheHit => {
                    prop_assert_eq!(r.verified, Some(true), "request {} unverified", r.id);
                }
                Outcome::Shed { reason } | Outcome::Rejected { reason } => {
                    prop_assert!(!reason.is_empty(), "request {} dropped silently", r.id);
                }
            }
        }
        // The degradation section's death roll-up is the per-device
        // injector-log count, not an independent counter that can skew.
        let deaths: usize = a.devices.iter().map(|d| d.deaths).sum();
        prop_assert_eq!(a.degradation.device_deaths, deaths);
        // Hedge accounting: at most one winner per request, and every
        // loser is explicitly cancelled.
        for r in &a.records {
            let winners = r.attempts.iter().filter(|at| at.is_winner()).count();
            prop_assert!(winners <= 1, "request {} has {winners} winning attempts", r.id);
        }
    }
}
