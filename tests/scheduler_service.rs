//! End-to-end scheduler soak properties: a seeded campaign over a
//! heterogeneous device pool under injected faults must be
//! bit-reproducible, reconcile every fault with the injector logs, and
//! give every request an explicit fate. This is the contract the CI
//! `soak` job (and `gas soak`) asserts across thousands of requests.

use gpu_sim::FaultPlan;
use proptest::prelude::*;
use scheduler::{parse_mix, Outcome, SchedulerConfig, SortService, Workload, WorkloadConfig};

fn soak_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_launch_failure(0.03)
        .with_transfer_abort(0.03)
        .with_transfer_corruption(0.02)
        .with_stream_stall(0.04, 0.2)
}

fn run_campaign(seed: u64, requests: usize) -> scheduler::ServiceReport {
    let workload = Workload::generate(&WorkloadConfig {
        seed,
        requests,
        ..WorkloadConfig::default()
    });
    let plan = soak_plan(seed.wrapping_add(1));
    let cfg = SchedulerConfig {
        seed,
        ..SchedulerConfig::default()
    };
    let mut service =
        SortService::new(parse_mix("test,k40c", 4).unwrap(), cfg, Some(&plan)).unwrap();
    service.run(&workload).unwrap()
}

#[test]
fn soak_campaigns_are_byte_identical_and_reconciled() {
    let a = run_campaign(42, 150);
    let b = run_campaign(42, 150);
    assert_eq!(a, b, "same seed, same report");
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "byte-identical serialized reports"
    );
    assert_eq!(a.invariant_violations(), Vec::<String>::new());
    assert_eq!(a.records.len(), 150, "one record per request");
    assert_eq!(a.completed + a.cpu_fallbacks + a.shed + a.rejected, 150);
}

#[test]
fn different_seeds_diverge() {
    let a = run_campaign(1, 60);
    let b = run_campaign(2, 60);
    assert_ne!(a.to_json(), b.to_json());
    assert_eq!(a.invariant_violations(), Vec::<String>::new());
    assert_eq!(b.invariant_violations(), Vec::<String>::new());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The soak invariants hold for *any* campaign seed, not just the
    /// pinned ones: every admitted request verifies against the oracle,
    /// nothing is dropped silently, and the per-device fault accounting
    /// matches the injector logs.
    #[test]
    fn any_seed_reconciles(seed in any::<u64>()) {
        let report = run_campaign(seed, 40);
        prop_assert_eq!(report.invariant_violations(), Vec::<String>::new());
        prop_assert_eq!(report.records.len(), 40);
        for r in &report.records {
            match &r.outcome {
                Outcome::Completed { .. } | Outcome::CpuFallback { .. } => {
                    prop_assert_eq!(r.verified, Some(true), "request {} unverified", r.id);
                }
                Outcome::Shed { reason } | Outcome::Rejected { reason } => {
                    prop_assert!(!reason.is_empty(), "request {} dropped silently", r.id);
                }
            }
        }
    }
}
