//! Serde-default audit: every `Counters` and `ServiceReport` field
//! added after PR 5 must carry `#[serde(default)]` so that JSON written
//! by older builds — recorded soak reports, metrics snapshots, the
//! checked-in `results/baseline-fig2.json` — still deserializes. The
//! test strips the post-PR-5 keys from freshly serialized documents and
//! parses what remains, which is exactly the shape an old file has.

use gpu_sim::{Counters, Timeline};
use scheduler::{
    parse_mix, DegradationReport, SchedulerConfig, ServiceReport, SortService, Workload,
    WorkloadConfig,
};

/// Runs a small real campaign so the report carries populated records,
/// attempts and device sections rather than empty vectors.
fn sample_report() -> ServiceReport {
    let workload = Workload::generate(&WorkloadConfig {
        seed: 5,
        requests: 12,
        warp_fraction: 0.25,
        fused_fraction: 0.25,
        ..WorkloadConfig::default()
    });
    let cfg = SchedulerConfig {
        seed: 5,
        ..SchedulerConfig::default()
    };
    let mut service = SortService::new(parse_mix("test", 2).unwrap(), cfg, None).unwrap();
    service.run(&workload).unwrap()
}

/// Removes `key` everywhere it appears in the document, any depth.
fn strip_key(v: &mut serde_json::Value, key: &str) {
    match v {
        serde_json::Value::Object(map) => {
            map.remove(key);
            for child in map.values_mut() {
                strip_key(child, key);
            }
        }
        serde_json::Value::Array(items) => {
            for child in items {
                strip_key(child, key);
            }
        }
        _ => {}
    }
}

/// The report fields that did not exist in PR-5-era JSON. Everything
/// here must deserialize to its default when absent.
const POST_PR5_REPORT_KEYS: &[&str] = &[
    // PR 7: telemetry-derived sections and per-attempt cost-model data.
    "slo",
    "predicted_ms",
    "variant",
    // PR 9: tail tolerance.
    "degradation",
    "hedge",
    "cancelled",
    "deaths",
    "watchdog_cancels",
    // PR 10: streaming tier (coalescing, result cache).
    "cache",
    "cache_hits",
    "coalesced",
];

#[test]
fn service_report_parses_without_any_post_pr5_field() {
    let report = sample_report();
    let mut doc: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
    for key in POST_PR5_REPORT_KEYS {
        strip_key(&mut doc, key);
    }
    let old: ServiceReport = serde_json::from_value(doc).expect("pre-PR JSON must still parse");
    // The stripped fields come back as their defaults…
    assert_eq!(old.degradation, DegradationReport::default());
    assert!(!old.degradation.enabled);
    assert_eq!(old.cache, scheduler::CacheReport::default());
    assert_eq!(old.cache_hits, 0);
    assert!(old
        .records
        .iter()
        .all(|r| r.attempts.iter().all(|a| a.coalesced == 0)));
    assert!(old.devices.iter().all(|d| d.deaths == 0));
    assert!(old.devices.iter().all(|d| d.watchdog_cancels == 0));
    for r in &old.records {
        for a in &r.attempts {
            assert!(!a.hedge);
            assert_eq!(a.cancelled, None);
        }
    }
    // …while everything that existed in PR 5 survives untouched.
    assert_eq!(old.requests, report.requests);
    assert_eq!(old.completed, report.completed);
    assert_eq!(old.records.len(), report.records.len());
    assert_eq!(old.devices.len(), report.devices.len());
}

#[test]
fn stripping_only_the_pr9_fields_keeps_the_report_reconciled() {
    // A PR-7/8-era file (has slo + variant, lacks the tail-tolerance
    // section) must not only parse: with no hedges, cancels or deaths
    // recorded, the recomputed degradation invariants must hold too.
    let report = sample_report();
    let mut doc: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
    for key in [
        "degradation",
        "hedge",
        "cancelled",
        "deaths",
        "watchdog_cancels",
    ] {
        strip_key(&mut doc, key);
    }
    let old: ServiceReport = serde_json::from_value(doc).unwrap();
    assert_eq!(old.invariant_violations(), Vec::<String>::new());
}

#[test]
fn stripping_only_the_pr10_fields_keeps_the_report_reconciled() {
    // A PR-9-era file (has the tail-tolerance section, lacks the
    // streaming tier's cache section and coalescing counters) must parse
    // to defaults that still satisfy the cache-reconciliation
    // invariants: a disabled cache with zero hits and no cache-hit
    // records is exactly what an old run looks like.
    let report = sample_report();
    let mut doc: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
    for key in ["cache", "cache_hits", "coalesced"] {
        strip_key(&mut doc, key);
    }
    let old: ServiceReport = serde_json::from_value(doc).unwrap();
    assert_eq!(old.cache, scheduler::CacheReport::default());
    assert_eq!(old.invariant_violations(), Vec::<String>::new());
}

#[test]
fn counters_parse_without_any_post_pr5_field() {
    let full = Counters {
        alu: 10,
        shared_accesses: 20,
        global_elems: 30,
        global_txn_micro: 40,
        atomics_global: 1,
        atomics_shared: 2,
        syncs: 3,
        divergence_events: 4,
        baseline_cycles: 5,
        shared_bank_passes: 6, // PR 6
        warp_votes: 7,         // PR 6
        warp_shuffles: 8,      // PR 6
        bucket_overflows: 9,   // PR 8
    };
    let mut doc: serde_json::Value = serde_json::to_value(&full).unwrap();
    for key in [
        "shared_bank_passes",
        "warp_votes",
        "warp_shuffles",
        "bucket_overflows",
    ] {
        strip_key(&mut doc, key);
    }
    let old: Counters = serde_json::from_value(doc).expect("pre-PR-6 counters must parse");
    assert_eq!(old.alu, 10);
    assert_eq!(old.baseline_cycles, 5);
    assert_eq!(old.shared_bank_passes, 0);
    assert_eq!(old.warp_votes, 0);
    assert_eq!(old.warp_shuffles, 0);
    assert_eq!(old.bucket_overflows, 0);
}

#[test]
fn timeline_parses_without_efficiency_spans_or_stream_fields() {
    // A PR-5-era timeline predates per-launch efficiency, host spans
    // and stream scheduling metadata.
    let doc = serde_json::json!({
        "kernels": [{
            "name": "legacy",
            "grid_dim": 4,
            "block_dim": 128,
            "cycles": 1000,
            "time_ms": 0.5,
            "counters": {
                "alu": 1, "shared_accesses": 2, "global_elems": 3,
                "global_txn_micro": 4, "atomics_global": 0,
                "atomics_shared": 0, "syncs": 1, "divergence_events": 0,
                "baseline_cycles": 0
            },
            "sm_imbalance": 1.0,
            "max_block_cycles": 250,
            "occupancy": 1.0
        }],
        "transfers": []
    });
    let tl: Timeline = serde_json::from_value(doc).expect("pre-PR-5 timeline must parse");
    assert_eq!(tl.kernels.len(), 1);
    assert_eq!(tl.kernels[0].counters.warp_votes, 0);
    assert!(tl.spans.is_empty());
}

#[test]
fn bootstrap_baseline_sentinel_still_parses() {
    // The checked-in results/baseline-fig2.json may still be the
    // bootstrap sentinel; it must stay readable as JSON so the
    // bench-smoke gate can detect it and record instead of compare.
    let body = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results/baseline-fig2.json"),
    )
    .expect("results/baseline-fig2.json is checked in");
    let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(
        doc.get("bootstrap").is_some() || doc.get("rows").is_some(),
        "baseline file must be the sentinel or a recorded Fig. 2 table: {doc}"
    );
}
