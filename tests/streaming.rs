//! Streaming-tier properties: the overlapped, coalescing, caching
//! serving path must be an *optimization*, never a semantic change. For
//! any seed, the streamed run's outputs are bit-identical to what the
//! sequential path produces — both are verified f32-bit-for-bit against
//! the shared `cpu_ref` oracle — the cache section reconciles, and
//! same-seed replay is byte-identical in both the report JSON and the
//! telemetry snapshot.

use gpu_sim::FaultPlan;
use proptest::prelude::*;
use scheduler::{
    parse_mix, Outcome, SchedulerConfig, ServiceReport, SortService, Workload, WorkloadConfig,
};

/// A repeat-heavy workload: half the stream reuses canned payloads so
/// the content-hash cache has something to hit.
fn repeat_workload(seed: u64, requests: usize) -> Workload {
    Workload::generate(&WorkloadConfig {
        seed,
        requests,
        warp_fraction: 0.2,
        fused_fraction: 0.2,
        repeat_fraction: 0.5,
        ..WorkloadConfig::default()
    })
}

/// Drains `workload` with the full streaming stack armed: auto-sized
/// admission window, 16-entry result cache, three-stream overlap.
fn run_streamed(
    seed: u64,
    workload: &Workload,
    faults: Option<&FaultPlan>,
) -> (ServiceReport, String) {
    let cfg = SchedulerConfig {
        seed,
        batch_window_ms: -1.0,
        cache_entries: 16,
        overlap: true,
        ..SchedulerConfig::default()
    };
    let mut service = SortService::new(parse_mix("test", 2).unwrap(), cfg, faults).unwrap();
    let report = service.run(workload).unwrap();
    let snapshot = service.metrics_snapshot().to_json();
    (report, snapshot)
}

/// Drains `workload` with the legacy sequential dispatch (everything
/// off): the semantic reference the streamed run is held against.
fn run_sequential(seed: u64, workload: &Workload) -> ServiceReport {
    let cfg = SchedulerConfig {
        seed,
        ..SchedulerConfig::default()
    };
    let mut service = SortService::new(parse_mix("test", 2).unwrap(), cfg, None).unwrap();
    service.run(workload).unwrap()
}

/// Every record that produced an output in `report` must be verified:
/// `verified == Some(true)` means the bytes equal the `cpu_ref` oracle
/// bit-for-bit, which is how "streamed output == sequential output" is
/// established without exporting payloads — both runs are pinned to the
/// same oracle.
fn assert_all_outputs_verified(report: &ServiceReport) -> Result<(), TestCaseError> {
    for r in &report.records {
        match &r.outcome {
            Outcome::Completed { .. } | Outcome::CpuFallback { .. } | Outcome::CacheHit => {
                prop_assert_eq!(r.verified, Some(true), "request {} unverified", r.id);
            }
            Outcome::Shed { reason } | Outcome::Rejected { reason } => {
                prop_assert!(!reason.is_empty(), "request {} dropped silently", r.id);
            }
        }
    }
    Ok(())
}

#[test]
fn repeated_content_hits_the_cache_with_zero_billed_device_time() {
    let workload = repeat_workload(11, 60);
    let (report, _) = run_streamed(11, &workload, None);
    assert_eq!(report.invariant_violations(), Vec::<String>::new());
    assert!(report.cache.enabled);
    assert!(
        report.cache_hits > 0,
        "a 50% repeat workload must hit the cache: {:?}",
        report.cache
    );
    // A cache hit bills no device time: its record has no attempts and
    // completes at its own arrival instant.
    for r in report
        .records
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::CacheHit))
    {
        assert!(r.attempts.is_empty(), "request {} touched a device", r.id);
        assert_eq!(r.verified, Some(true));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// For any seed: the streamed stack loses nothing, every output it
    /// produces is oracle-verified bit-for-bit — as is every output of
    /// the sequential reference run, making the two byte-identical
    /// wherever both produce one — and the cache section reconciles.
    #[test]
    fn streamed_outputs_match_the_sequential_path(seed in any::<u64>()) {
        let workload = repeat_workload(seed, 40);
        let (streamed, _) = run_streamed(seed, &workload, None);
        let sequential = run_sequential(seed, &workload);
        prop_assert_eq!(streamed.invariant_violations(), Vec::<String>::new());
        prop_assert_eq!(sequential.invariant_violations(), Vec::<String>::new());
        prop_assert_eq!(streamed.records.len(), 40);
        prop_assert_eq!(sequential.records.len(), 40);
        assert_all_outputs_verified(&streamed)?;
        assert_all_outputs_verified(&sequential)?;
        // The sequential path must be untouched by the streaming code:
        // no cache section, no coalesced attempts.
        prop_assert_eq!(sequential.cache, scheduler::CacheReport::default());
        prop_assert!(sequential
            .records
            .iter()
            .all(|r| r.attempts.iter().all(|a| a.coalesced == 0)));
    }

    /// Same seed ⇒ byte-identical replay with the whole streaming stack
    /// armed, chaos included: report JSON and telemetry snapshot.
    #[test]
    fn streamed_runs_replay_byte_identically_under_chaos(seed in any::<u64>()) {
        let workload = repeat_workload(seed, 30);
        let plan = FaultPlan::seeded(seed.wrapping_add(7))
            .with_launch_failure(0.03)
            .with_transfer_abort(0.03)
            .with_stream_stall(0.05, 0.2);
        let (a, snap_a) = run_streamed(seed, &workload, Some(&plan));
        let (b, snap_b) = run_streamed(seed, &workload, Some(&plan));
        prop_assert_eq!(a.to_json(), b.to_json(), "report replay must be byte-identical");
        prop_assert_eq!(snap_a, snap_b, "telemetry replay must be byte-identical");
        prop_assert_eq!(a.invariant_violations(), Vec::<String>::new());
        assert_all_outputs_verified(&a)?;
    }
}
