//! Cross-crate tracing tests: the Chrome trace a real GPU-ArraySort run
//! exports must be schema-valid and internally consistent (golden-schema
//! test), streamed out-of-core work must land on per-stream tracks, and
//! the counter algebra the trace is built from must behave like a
//! commutative monoid.

use array_sort::{sort_out_of_core_streamed, GpuArraySort};
use datagen::ArrayBatch;
use gpu_sim::{chrome_trace_json, phase_summaries, Counters, DeviceSpec, Gpu};
use proptest::prelude::*;
use serde_json::Value;

fn gas_run() -> Gpu {
    let mut batch = ArrayBatch::paper_uniform(0x7AC3, 400, 500);
    let mut gpu = Gpu::new(DeviceSpec::tesla_k40c());
    GpuArraySort::new()
        .sort(&mut gpu, batch.as_flat_mut(), 500)
        .expect("fits");
    gpu
}

fn complete_events(doc: &Value) -> Vec<&Value> {
    doc["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e["ph"] == "X")
        .collect()
}

#[test]
fn chrome_trace_of_a_real_sort_is_schema_valid() {
    let gpu = gas_run();
    let doc = chrome_trace_json(gpu.timeline(), gpu.spec());

    // Top level: a traceEvents array plus the display unit.
    assert!(doc["traceEvents"].is_array());
    assert_eq!(doc["displayTimeUnit"], "ms");

    let events = complete_events(&doc);
    assert!(!events.is_empty());
    for e in &events {
        // Every complete event carries non-negative microsecond ts/dur
        // and a track id.
        assert!(e["ts"].as_f64().unwrap() >= 0.0, "{e}");
        assert!(e["dur"].as_f64().unwrap() >= 0.0, "{e}");
        assert!(e["tid"].as_u64().is_some(), "{e}");
        assert!(e["name"].as_str().is_some(), "{e}");
    }

    // Kernels and transfers never share a track with each other or with
    // the phase spans.
    let tids_of = |pred: &dyn Fn(&Value) -> bool| -> std::collections::BTreeSet<u64> {
        events
            .iter()
            .filter(|e| pred(e))
            .map(|e| e["tid"].as_u64().unwrap())
            .collect()
    };
    let span_tids = tids_of(&|e| e["args"]["depth"].is_u64());
    let transfer_tids = tids_of(&|e| e["name"] == "htod" || e["name"] == "dtoh");
    let kernel_tids =
        tids_of(&|e| !e["args"]["depth"].is_u64() && e["name"] != "htod" && e["name"] != "dtoh");
    assert!(!transfer_tids.is_empty() && !kernel_tids.is_empty() && !span_tids.is_empty());
    assert!(span_tids.is_disjoint(&kernel_tids));
    assert!(span_tids.is_disjoint(&transfer_tids));
    assert!(
        kernel_tids.is_disjoint(&transfer_tids),
        "{kernel_tids:?} vs {transfer_tids:?}"
    );

    // Every device event nests inside one of the phase spans.
    let spans: Vec<(f64, f64)> = events
        .iter()
        .filter(|e| e["args"]["depth"] == 0)
        .map(|e| (e["ts"].as_f64().unwrap(), e["dur"].as_f64().unwrap()))
        .collect();
    const EPS_US: f64 = 1e-3; // 1e-6 ms
    for e in events.iter().filter(|e| !e["args"]["depth"].is_u64()) {
        let (ts, dur) = (e["ts"].as_f64().unwrap(), e["dur"].as_f64().unwrap());
        assert!(
            spans
                .iter()
                .any(|&(s, d)| ts >= s - EPS_US && ts + dur <= s + d + EPS_US),
            "event {} at [{ts}, {}] escapes all phase spans {spans:?}",
            e["name"],
            ts + dur
        );
    }

    // The depth-0 spans tile the whole run: their durations sum to the
    // device clock.
    let span_sum_ms: f64 = spans.iter().map(|&(_, d)| d).sum::<f64>() / 1000.0;
    assert!(
        (span_sum_ms - gpu.elapsed_ms()).abs() < 1e-6,
        "span sum {span_sum_ms} vs elapsed {}",
        gpu.elapsed_ms()
    );
}

#[test]
fn phase_summaries_match_the_sort_and_cover_elapsed() {
    let gpu = gas_run();
    let phases = phase_summaries(gpu.timeline(), gpu.spec());
    let names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "gas/upload",
            "gas/phase1-splitters",
            "gas/phase2-bucket-scatter",
            "gas/phase3-bucket-sort",
            "gas/download"
        ]
    );
    let sum: f64 = phases.iter().map(|p| p.span_ms).sum();
    assert!(
        (sum - gpu.elapsed_ms()).abs() < 1e-6,
        "{sum} vs {}",
        gpu.elapsed_ms()
    );
    // Upload/download are pure transfer phases; the three algorithm
    // phases are pure kernel phases.
    assert!(phases[0].transfers > 0 && phases[0].kernels == 0);
    assert!(phases[4].transfers > 0 && phases[4].kernels == 0);
    for p in &phases[1..4] {
        assert!(p.kernels > 0, "{} must launch kernels", p.name);
    }
}

#[test]
fn streamed_out_of_core_lands_on_per_stream_tracks() {
    let mut batch = ArrayBatch::paper_uniform(0x00C, 25_000, 1000); // ~100 MB > 64 MB device
    let mut gpu = Gpu::new(DeviceSpec::test_device());
    sort_out_of_core_streamed(&GpuArraySort::new(), &mut gpu, batch.as_flat_mut(), 1000)
        .expect("fits chunk-wise");
    assert!(batch.is_each_array_sorted());

    // The streamed schedule issues every kernel and transfer on one of
    // two explicit streams.
    assert!(gpu.timeline().kernels.iter().all(|k| k.stream.is_some()));
    assert!(gpu.timeline().transfers.iter().all(|t| t.stream.is_some()));
    let streams: std::collections::BTreeSet<usize> = gpu
        .timeline()
        .kernels
        .iter()
        .filter_map(|k| k.stream)
        .collect();
    assert!(
        streams.len() >= 2,
        "double buffering uses two streams: {streams:?}"
    );

    // And the exporter gives each (stream, engine) pair its own track.
    let doc = chrome_trace_json(gpu.timeline(), gpu.spec());
    let tids: std::collections::BTreeSet<u64> = complete_events(&doc)
        .iter()
        .filter_map(|e| e["tid"].as_u64())
        .collect();
    for s in &streams {
        assert!(
            tids.contains(&(100 + *s as u64)),
            "kernel track for stream {s}"
        );
    }
    assert!(
        tids.iter().any(|t| (200..300).contains(t)),
        "htod stream tracks"
    );
    assert!(tids.iter().any(|t| *t >= 300), "dtoh stream tracks");
}

// ------------------------------------------------ counter algebra laws

fn counters_from(v: [u64; 12]) -> Counters {
    Counters {
        alu: v[0],
        shared_accesses: v[1],
        global_elems: v[2],
        global_txn_micro: v[3],
        atomics_global: v[4],
        atomics_shared: v[5],
        syncs: v[6],
        divergence_events: v[7],
        baseline_cycles: v[8],
        shared_bank_passes: v[9],
        warp_votes: v[10],
        warp_shuffles: v[11],
    }
}

fn merged(a: &Counters, b: &Counters) -> Counters {
    let mut m = a.clone();
    m.merge(b);
    m
}

fn small() -> impl Strategy<Value = [u64; 12]> {
    // Bounded well below u64::MAX so three-way merges cannot overflow.
    prop::array::uniform12(0u64..(1 << 32))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn counters_merge_is_commutative(a in small(), b in small()) {
        let (a, b) = (counters_from(a), counters_from(b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn counters_merge_is_associative(a in small(), b in small(), c in small()) {
        let (a, b, c) = (counters_from(a), counters_from(b), counters_from(c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn counters_merge_identity_is_default(a in small()) {
        let a = counters_from(a);
        prop_assert_eq!(merged(&a, &Counters::default()), a.clone());
        prop_assert_eq!(merged(&Counters::default(), &a), a);
    }

    #[test]
    fn global_txns_rounding_is_monotone(a in 0u64..u64::MAX / 2, delta in 0u64..(1 << 40)) {
        let lo = Counters { global_txn_micro: a, ..Default::default() };
        let hi = Counters { global_txn_micro: a + delta, ..Default::default() };
        prop_assert!(lo.global_txns() <= hi.global_txns());
    }
}
