//! Property tests for the `gpu_sim::warp` intrinsics against scalar
//! references, plus determinism of the warp-instruction cycle bills:
//! the same seeded kernel launched twice must produce bit-identical
//! [`KernelStats`], and a different seed must produce a different bill.

use gpu_sim::{warp, DeviceSpec, Gpu, KernelStats, LaunchConfig};
use proptest::prelude::*;

/// Lane predicates for a warp of 1..=64 lanes.
fn lanes_bool() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..=64)
}

/// Lane values from a small alphabet so peer groups actually form.
fn lanes_vals() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..8, 1..=64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `ballot` sets exactly bit `i` for each true predicate: popcount
    /// equals the number of true lanes, every bit matches the lane's
    /// predicate, and bits past the warp width stay clear.
    #[test]
    fn ballot_matches_the_scalar_reference(preds in lanes_bool()) {
        let mask = warp::ballot(&preds);
        prop_assert_eq!(
            mask.count_ones() as usize,
            preds.iter().filter(|p| **p).count()
        );
        for (i, &p) in preds.iter().enumerate() {
            prop_assert_eq!((mask >> i) & 1 == 1, p, "bit {} disagrees", i);
        }
        if preds.len() < 64 {
            prop_assert_eq!(mask >> preds.len(), 0, "bits past the warp width must be clear");
        }
    }

    /// `match_any` is per-lane equality ballots: reflexive, symmetric,
    /// and identical to a naive pairwise reference.
    #[test]
    fn match_any_matches_the_pairwise_reference(vals in lanes_vals()) {
        let masks = warp::match_any(&vals);
        prop_assert_eq!(masks.len(), vals.len());
        for (i, &mi) in masks.iter().enumerate() {
            // Reflexive: every lane is its own peer.
            prop_assert_eq!((mi >> i) & 1, 1, "lane {} missing from its own mask", i);
            for (j, &vj) in vals.iter().enumerate() {
                let expect = vals[i] == vj;
                prop_assert_eq!(
                    (mi >> j) & 1 == 1,
                    expect,
                    "mask[{}] bit {} disagrees with equality",
                    i,
                    j
                );
                // Symmetric: i in mask[j] iff j in mask[i].
                prop_assert_eq!((mi >> j) & 1, (masks[j] >> i) & 1);
            }
        }
        // Peer masks partition the warp: equal values share a mask,
        // different values have disjoint masks.
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                if vals[i] == vals[j] {
                    prop_assert_eq!(masks[i], masks[j]);
                } else {
                    prop_assert_eq!(masks[i] & masks[j], 0);
                }
            }
        }
    }

    /// `exclusive_sum` equals a running total with lane 0 at zero, and
    /// `last + vals.last == inclusive total`.
    #[test]
    fn exclusive_sum_matches_a_running_total(
        vals in proptest::collection::vec(0u32..1000, 1..=64),
    ) {
        let scan = warp::exclusive_sum(&vals);
        prop_assert_eq!(scan.len(), vals.len());
        let mut acc = 0u32;
        for (i, (&s, &v)) in scan.iter().zip(&vals).enumerate() {
            prop_assert_eq!(s, acc, "lane {} prefix disagrees", i);
            acc += v;
        }
        prop_assert_eq!(
            scan.last().unwrap() + vals.last().unwrap(),
            vals.iter().sum::<u32>()
        );
    }

    /// `leader_count` equals the number of distinct values, and equals
    /// the number of `match_any` masks whose lowest set bit is the
    /// lane's own bit — the warp-aggregated atomic count.
    #[test]
    fn leader_count_counts_distinct_peer_groups(vals in lanes_vals()) {
        let leaders = warp::leader_count(&vals);
        let mut distinct = vals.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(leaders, distinct.len());

        let masks = warp::match_any(&vals);
        let lowest_bit_leaders = masks
            .iter()
            .enumerate()
            .filter(|(i, m)| m.trailing_zeros() as usize == *i)
            .count();
        prop_assert_eq!(leaders, lowest_bit_leaders);
    }
}

/// `scan_steps` is `⌈log₂ ws⌉` for every warp width up to 64, including
/// non-powers-of-two, with the degenerate widths pinned.
#[test]
fn scan_steps_is_ceil_log2() {
    assert_eq!(warp::scan_steps(0), 0, "zero-width warp clamps to one lane");
    assert_eq!(warp::scan_steps(1), 0);
    assert_eq!(warp::scan_steps(32), 5);
    for ws in 1u32..=64 {
        let expect = (ws as f64).log2().ceil() as u32;
        assert_eq!(warp::scan_steps(ws), expect, "ws={ws}");
        assert!(warp::scan_steps(ws) >= warp::scan_steps(ws.saturating_sub(1)));
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Launches one block of 64 threads whose warp-instruction mix is
/// derived from `seed`, returning the kernel's stats.
fn seeded_warp_kernel(seed: u64) -> KernelStats {
    let mut gpu = Gpu::new(DeviceSpec::test_device());
    gpu.launch("warp_bill_probe", LaunchConfig::grid(1, 64), |block| {
        block.threads(|t| {
            let r = xorshift(seed ^ (0x9E37_79B9 + t.tid as u64));
            t.charge_warp_vote(1 + r % 5);
            t.charge_warp_shuffle(1 + (r >> 8) % 7);
            if r & 1 == 0 {
                t.charge_warp_scan();
            }
            t.charge_alu((r >> 16) % 9);
        });
    })
    .expect("probe kernel launches clean")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The cycle bill of a seeded warp-instruction mix is deterministic:
    /// two launches with the same seed are bit-identical in cycles, time
    /// and every counter.
    #[test]
    fn warp_cycle_bills_are_deterministic_per_seed(seed in any::<u64>()) {
        let a = seeded_warp_kernel(seed);
        let b = seeded_warp_kernel(seed);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.time_ms.to_bits(), b.time_ms.to_bits());
        prop_assert_eq!(a.counters.warp_votes, b.counters.warp_votes);
        prop_assert_eq!(a.counters.warp_shuffles, b.counters.warp_shuffles);
        prop_assert_eq!(a.counters.alu, b.counters.alu);
        prop_assert!(a.counters.warp_votes > 0, "the probe must actually vote");
        prop_assert!(a.counters.warp_shuffles > 0, "the probe must actually shuffle");
    }
}

/// Different seeds change the bill: the counters come from the issued
/// instruction mix, not a constant.
#[test]
fn warp_cycle_bills_track_the_seed() {
    let a = seeded_warp_kernel(0xAB6);
    let b = seeded_warp_kernel(0xAB7);
    assert!(
        a.counters.warp_votes != b.counters.warp_votes
            || a.counters.warp_shuffles != b.counters.warp_shuffles
            || a.cycles != b.cycles,
        "two different seeds billed an identical kernel"
    );
}
